#include "relational/table.h"

#include "common/check.h"
#include "relational/database.h"

namespace lshap {

Table::Table(Schema schema, const StringPool* pool)
    : schema_(std::move(schema)), pool_(pool) {
  columns_.reserve(schema_.num_columns());
  for (const Column& c : schema_.columns()) columns_.emplace_back(c.type);
}

std::vector<Value> Table::DecodeRow(size_t row) const {
  std::vector<Value> values;
  values.reserve(columns_.size());
  for (const ColumnData& col : columns_) {
    values.push_back(col.GetValue(row, *pool_));
  }
  return values;
}

TableAppender::TableAppender(Database* db, uint32_t table_index)
    : db_(db),
      table_index_(table_index),
      // "Complete row" state, so the first Begin() passes its check.
      next_col_(db->tables_[table_index].num_columns()),
      staged_(db->tables_[table_index].num_columns(), 0) {}

Table& TableAppender::table() { return db_->tables_[table_index_]; }

const Schema& TableAppender::schema() const {
  return db_->tables_[table_index_].schema();
}

TableAppender& TableAppender::Begin() {
  Table& t = table();
  LSHAP_CHECK_EQ(next_col_, t.num_columns());  // previous row complete
  next_col_ = 0;
  return *this;
}

TableAppender& TableAppender::Int(int64_t v) {
  Table& t = table();
  LSHAP_CHECK_LT(next_col_, t.num_columns());
  ColumnData& col = t.columns_[next_col_];
  if (col.type() == ColumnType::kDouble) {
    col.AppendDouble(static_cast<double>(v));
  } else {
    col.AppendInt(v);
  }
  staged_[next_col_++] += 1;
  return *this;
}

TableAppender& TableAppender::Real(double v) {
  Table& t = table();
  LSHAP_CHECK_LT(next_col_, t.num_columns());
  t.columns_[next_col_].AppendDouble(v);
  staged_[next_col_++] += 1;
  return *this;
}

TableAppender& TableAppender::Str(std::string_view s) {
  Table& t = table();
  LSHAP_CHECK_LT(next_col_, t.num_columns());
  t.columns_[next_col_].AppendString(db_->pool_.Intern(s));
  staged_[next_col_++] += 1;
  return *this;
}

TableAppender& TableAppender::Null() {
  Table& t = table();
  LSHAP_CHECK_LT(next_col_, t.num_columns());
  t.columns_[next_col_].AppendNull();
  staged_[next_col_++] += 1;
  return *this;
}

FactId TableAppender::Commit() {
  // Thin wrapper: one fully-staged row, committed through the batch path.
  LSHAP_CHECK_EQ(next_col_, table().num_columns());
  std::vector<FactId> ids = CommitRows();
  LSHAP_CHECK_EQ(ids.size(), size_t{1});
  return ids[0];
}

TableAppender& TableAppender::AppendColumn(size_t col,
                                           std::span<const int64_t> values) {
  Table& t = table();
  LSHAP_CHECK_EQ(next_col_, t.num_columns());  // no row open
  LSHAP_CHECK_LT(col, t.num_columns());
  ColumnData& data = t.columns_[col];
  if (data.type() == ColumnType::kDouble) {
    for (int64_t v : values) data.AppendDouble(static_cast<double>(v));
  } else {
    for (int64_t v : values) data.AppendInt(v);
  }
  staged_[col] += values.size();
  return *this;
}

TableAppender& TableAppender::AppendColumn(size_t col,
                                           std::span<const double> values) {
  Table& t = table();
  LSHAP_CHECK_EQ(next_col_, t.num_columns());
  LSHAP_CHECK_LT(col, t.num_columns());
  ColumnData& data = t.columns_[col];
  for (double v : values) data.AppendDouble(v);
  staged_[col] += values.size();
  return *this;
}

TableAppender& TableAppender::AppendColumn(
    size_t col, std::span<const std::string_view> values) {
  Table& t = table();
  LSHAP_CHECK_EQ(next_col_, t.num_columns());
  LSHAP_CHECK_LT(col, t.num_columns());
  ColumnData& data = t.columns_[col];
  for (std::string_view v : values) data.AppendString(db_->pool_.Intern(v));
  staged_[col] += values.size();
  return *this;
}

TableAppender& TableAppender::AppendColumn(
    size_t col, std::span<const std::string> values) {
  Table& t = table();
  LSHAP_CHECK_EQ(next_col_, t.num_columns());
  LSHAP_CHECK_LT(col, t.num_columns());
  ColumnData& data = t.columns_[col];
  for (const std::string& v : values) {
    data.AppendString(db_->pool_.Intern(v));
  }
  staged_[col] += values.size();
  return *this;
}

TableAppender& TableAppender::AppendNullableColumn(
    size_t col, std::span<const int64_t> values,
    std::span<const uint8_t> validity) {
  Table& t = table();
  LSHAP_CHECK_EQ(next_col_, t.num_columns());  // no row open
  LSHAP_CHECK_LT(col, t.num_columns());
  LSHAP_CHECK_EQ(values.size(), validity.size());
  ColumnData& data = t.columns_[col];
  if (data.type() == ColumnType::kDouble) {
    for (size_t i = 0; i < values.size(); ++i) {
      if (validity[i] != 0) {
        data.AppendDouble(static_cast<double>(values[i]));
      } else {
        data.AppendNull();
      }
    }
  } else {
    for (size_t i = 0; i < values.size(); ++i) {
      if (validity[i] != 0) {
        data.AppendInt(values[i]);
      } else {
        data.AppendNull();
      }
    }
  }
  staged_[col] += values.size();
  return *this;
}

TableAppender& TableAppender::AppendNullableColumn(
    size_t col, std::span<const double> values,
    std::span<const uint8_t> validity) {
  Table& t = table();
  LSHAP_CHECK_EQ(next_col_, t.num_columns());
  LSHAP_CHECK_LT(col, t.num_columns());
  LSHAP_CHECK_EQ(values.size(), validity.size());
  ColumnData& data = t.columns_[col];
  for (size_t i = 0; i < values.size(); ++i) {
    if (validity[i] != 0) {
      data.AppendDouble(values[i]);
    } else {
      data.AppendNull();
    }
  }
  staged_[col] += values.size();
  return *this;
}

TableAppender& TableAppender::AppendNullableColumn(
    size_t col, std::span<const std::string_view> values,
    std::span<const uint8_t> validity) {
  Table& t = table();
  LSHAP_CHECK_EQ(next_col_, t.num_columns());
  LSHAP_CHECK_LT(col, t.num_columns());
  LSHAP_CHECK_EQ(values.size(), validity.size());
  ColumnData& data = t.columns_[col];
  for (size_t i = 0; i < values.size(); ++i) {
    // Null slots are not interned: the placeholder value never reaches the
    // string pool, so a batch with nulls interns exactly its valid strings.
    if (validity[i] != 0) {
      data.AppendString(db_->pool_.Intern(values[i]));
    } else {
      data.AppendNull();
    }
  }
  staged_[col] += values.size();
  return *this;
}

TableAppender& TableAppender::AppendNullableColumn(
    size_t col, std::span<const std::string> values,
    std::span<const uint8_t> validity) {
  Table& t = table();
  LSHAP_CHECK_EQ(next_col_, t.num_columns());
  LSHAP_CHECK_LT(col, t.num_columns());
  LSHAP_CHECK_EQ(values.size(), validity.size());
  ColumnData& data = t.columns_[col];
  for (size_t i = 0; i < values.size(); ++i) {
    if (validity[i] != 0) {
      data.AppendString(db_->pool_.Intern(values[i]));
    } else {
      data.AppendNull();
    }
  }
  staged_[col] += values.size();
  return *this;
}

std::vector<FactId> TableAppender::CommitRows() {
  Table& t = table();
  LSHAP_CHECK_EQ(next_col_, t.num_columns());  // no row open
  const size_t new_rows = staged_.empty() ? 0 : staged_[0];
  for (size_t c = 0; c < staged_.size(); ++c) {
    LSHAP_CHECK_EQ(staged_[c], new_rows);  // rectangular batch
    staged_[c] = 0;
  }
  std::vector<FactId> ids;
  RegisterRows(new_rows, &ids);
  return ids;
}

void TableAppender::RegisterRows(size_t new_rows, std::vector<FactId>* out) {
  Table& t = table();
  out->reserve(new_rows);
  for (size_t i = 0; i < new_rows; ++i) {
    const uint32_t row = static_cast<uint32_t>(t.fact_ids_.size());
    const FactId id = db_->RegisterFact(table_index_, row);
    t.fact_ids_.push_back(id);
    out->push_back(id);
  }
}

std::vector<FactId> TableAppender::Append(const RowBatch& batch) {
  Table& t = table();
  const Schema& schema = t.schema();
  LSHAP_CHECK_EQ(batch.schema_.num_columns(), schema.num_columns());
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    LSHAP_CHECK(batch.schema_.columns()[c].type == schema.columns()[c].type);
    const RowBatch::ColumnBuffer& buf = batch.columns_[c];
    // All-valid buffers (empty validity) flush through the plain AppendColumn
    // path, so batches that never staged a Null are byte-identical to the
    // pre-null behavior; nullable buffers go through the validity-span path.
    const std::span<const uint8_t> validity(buf.validity);
    switch (schema.columns()[c].type) {
      case ColumnType::kInt:
        if (validity.empty()) {
          AppendColumn(c, std::span<const int64_t>(buf.ints));
        } else {
          AppendNullableColumn(c, std::span<const int64_t>(buf.ints),
                               validity);
        }
        break;
      case ColumnType::kDouble:
        if (validity.empty()) {
          AppendColumn(c, std::span<const double>(buf.reals));
        } else {
          AppendNullableColumn(c, std::span<const double>(buf.reals),
                               validity);
        }
        break;
      case ColumnType::kString:
        if (validity.empty()) {
          AppendColumn(c, std::span<const std::string>(buf.strs));
        } else {
          AppendNullableColumn(c, std::span<const std::string>(buf.strs),
                               validity);
        }
        break;
    }
  }
  return CommitRows();
}

RowBatch::RowBatch(const Schema& schema)
    : schema_(schema),
      columns_(schema.num_columns()),
      next_col_(schema.num_columns()) {}

RowBatch& RowBatch::Begin() {
  LSHAP_CHECK_EQ(next_col_, schema_.num_columns());  // previous row complete
  next_col_ = 0;
  return *this;
}

RowBatch& RowBatch::Int(int64_t v) {
  LSHAP_CHECK_LT(next_col_, schema_.num_columns());
  ColumnBuffer& buf = columns_[next_col_];
  // Same promotion rule as TableAppender::Int.
  if (schema_.columns()[next_col_].type == ColumnType::kDouble) {
    buf.reals.push_back(static_cast<double>(v));
  } else {
    buf.ints.push_back(v);
  }
  if (!buf.validity.empty()) buf.validity.push_back(1);
  ++next_col_;
  return *this;
}

RowBatch& RowBatch::Real(double v) {
  LSHAP_CHECK_LT(next_col_, schema_.num_columns());
  ColumnBuffer& buf = columns_[next_col_];
  buf.reals.push_back(v);
  if (!buf.validity.empty()) buf.validity.push_back(1);
  ++next_col_;
  return *this;
}

RowBatch& RowBatch::Str(std::string_view s) {
  LSHAP_CHECK_LT(next_col_, schema_.num_columns());
  ColumnBuffer& buf = columns_[next_col_];
  buf.strs.emplace_back(s);
  if (!buf.validity.empty()) buf.validity.push_back(1);
  ++next_col_;
  return *this;
}

RowBatch& RowBatch::Null() {
  LSHAP_CHECK_LT(next_col_, schema_.num_columns());
  ColumnBuffer& buf = columns_[next_col_];
  // Materialize validity on the column's first null, backfilling the cells
  // staged so far as valid; the null slot itself stages a placeholder so the
  // typed vector stays parallel to validity.
  size_t staged = 0;
  switch (schema_.columns()[next_col_].type) {
    case ColumnType::kInt:
      staged = buf.ints.size();
      break;
    case ColumnType::kDouble:
      staged = buf.reals.size();
      break;
    case ColumnType::kString:
      staged = buf.strs.size();
      break;
  }
  if (buf.validity.empty()) buf.validity.assign(staged, 1);
  buf.validity.push_back(0);
  switch (schema_.columns()[next_col_].type) {
    case ColumnType::kInt:
      buf.ints.push_back(0);
      break;
    case ColumnType::kDouble:
      buf.reals.push_back(0.0);
      break;
    case ColumnType::kString:
      buf.strs.emplace_back();
      break;
  }
  ++next_col_;
  return *this;
}

RowBatch& RowBatch::End() {
  LSHAP_CHECK_EQ(next_col_, schema_.num_columns());
  ++num_rows_;
  return *this;
}

}  // namespace lshap
