#ifndef LSHAP_RELATIONAL_VALUE_H_
#define LSHAP_RELATIONAL_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

namespace lshap {

// Column data types supported by the engine. SPJU workloads in DBShap use
// integers, floats and strings; any column of any type may additionally
// hold NULL cells (see ColumnData's validity bitmap, DESIGN.md §14).
enum class ColumnType { kInt, kDouble, kString };

const char* ColumnTypeName(ColumnType type);

// A dynamically typed cell value. Small, regular, hashable and ordered, so
// tuples can live in hash maps (join indexes, witness sets) and be sorted.
// NULL is a first-class storable cell: Value::Null() (or a
// default-constructed Value) ingests through Database::Insert and
// TableAppender like any other cell. Variant equality deliberately says
// Null() == Null() — that is what DISTINCT and witness-set comparison want;
// predicate and join comparison go through three-valued MatchesPredicate3
// and the join paths' null exclusion instead (SQL semantics: NULL compares
// unknown to everything, including NULL).
class Value {
 public:
  Value() : v_(std::monostate{}) {}
  explicit Value(int64_t i) : v_(i) {}
  explicit Value(double d) : v_(d) {}
  explicit Value(std::string s) : v_(std::move(s)) {}
  explicit Value(const char* s) : v_(std::string(s)) {}

  // The NULL cell, spelled as a factory so call sites read as intent
  // (`appender.Begin().Int(1).Null()` ingests one; `Value::Null()` is the
  // literal form) rather than as a leftover default construction.
  static Value Null() { return Value(); }

  bool is_null() const { return std::holds_alternative<std::monostate>(v_); }
  bool is_int() const { return std::holds_alternative<int64_t>(v_); }
  bool is_double() const { return std::holds_alternative<double>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }

  int64_t AsInt() const;
  double AsDouble() const;  // Promotes ints.
  const std::string& AsString() const;

  // Human-readable rendering ("Universal", "2007", "0.5").
  std::string ToString() const;
  // SQL literal rendering ("'Universal'", "2007").
  std::string ToSqlLiteral() const;

  size_t Hash() const;

  friend bool operator==(const Value& a, const Value& b) { return a.v_ == b.v_; }
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }
  // Total order: null < int/double (numeric order) < string.
  friend bool operator<(const Value& a, const Value& b);

 private:
  std::variant<std::monostate, int64_t, double, std::string> v_;
};

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace lshap

#endif  // LSHAP_RELATIONAL_VALUE_H_
