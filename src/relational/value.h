#ifndef LSHAP_RELATIONAL_VALUE_H_
#define LSHAP_RELATIONAL_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

namespace lshap {

// Column data types supported by the engine. SPJU workloads in DBShap use
// integers, floats and strings; NULLs appear only as generator artifacts.
enum class ColumnType { kInt, kDouble, kString };

const char* ColumnTypeName(ColumnType type);

// A dynamically typed cell value. Small, regular, hashable and ordered, so
// tuples can live in hash maps (join indexes, witness sets) and be sorted.
class Value {
 public:
  Value() : v_(std::monostate{}) {}
  explicit Value(int64_t i) : v_(i) {}
  explicit Value(double d) : v_(d) {}
  explicit Value(std::string s) : v_(std::move(s)) {}
  explicit Value(const char* s) : v_(std::string(s)) {}

  bool is_null() const { return std::holds_alternative<std::monostate>(v_); }
  bool is_int() const { return std::holds_alternative<int64_t>(v_); }
  bool is_double() const { return std::holds_alternative<double>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }

  int64_t AsInt() const;
  double AsDouble() const;  // Promotes ints.
  const std::string& AsString() const;

  // Human-readable rendering ("Universal", "2007", "0.5").
  std::string ToString() const;
  // SQL literal rendering ("'Universal'", "2007").
  std::string ToSqlLiteral() const;

  size_t Hash() const;

  friend bool operator==(const Value& a, const Value& b) { return a.v_ == b.v_; }
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }
  // Total order: null < int/double (numeric order) < string.
  friend bool operator<(const Value& a, const Value& b);

 private:
  std::variant<std::monostate, int64_t, double, std::string> v_;
};

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace lshap

#endif  // LSHAP_RELATIONAL_VALUE_H_
