#include "relational/database.h"

#include "common/check.h"
#include "common/strings.h"

namespace lshap {

Status Database::AddTable(Schema schema) {
  const std::string& name = schema.table_name();
  if (table_index_.count(name) > 0) {
    return Status::InvalidArgument("duplicate table '" + name + "'");
  }
  table_index_[name] = static_cast<uint32_t>(tables_.size());
  tables_.emplace_back(std::move(schema));
  return Status::Ok();
}

Result<FactId> Database::Insert(const std::string& table_name,
                                std::vector<Value> values) {
  auto idx = TableIndex(table_name);
  if (!idx.ok()) return idx.status();
  Table& table = tables_[*idx];
  if (values.size() != table.schema().num_columns()) {
    return Status::InvalidArgument(
        StrFormat("arity mismatch inserting into '%s': got %zu, want %zu",
                  table_name.c_str(), values.size(),
                  table.schema().num_columns()));
  }
  const FactId id = static_cast<FactId>(fact_locations_.size());
  fact_locations_.push_back(
      {*idx, static_cast<uint32_t>(table.num_rows())});
  table.AppendRow(std::move(values), id);
  return id;
}

Result<const Table*> Database::FindTable(const std::string& name) const {
  auto it = table_index_.find(name);
  if (it == table_index_.end()) {
    return Status::NotFound("no table '" + name + "' in database '" + name_ +
                            "'");
  }
  return static_cast<const Table*>(&tables_[it->second]);
}

Result<uint32_t> Database::TableIndex(const std::string& name) const {
  auto it = table_index_.find(name);
  if (it == table_index_.end()) {
    return Status::NotFound("no table '" + name + "' in database '" + name_ +
                            "'");
  }
  return it->second;
}

const std::vector<Value>& Database::FactValues(FactId id) const {
  LSHAP_CHECK_LT(id, fact_locations_.size());
  const FactLocation& loc = fact_locations_[id];
  return tables_[loc.table_index].row(loc.row_index);
}

uint32_t Database::FactTableIndex(FactId id) const {
  LSHAP_CHECK_LT(id, fact_locations_.size());
  return fact_locations_[id].table_index;
}

const std::string& Database::FactTableName(FactId id) const {
  return tables_[FactTableIndex(id)].schema().table_name();
}

std::string Database::FactToString(FactId id) const {
  const std::vector<Value>& vals = FactValues(id);
  std::vector<std::string> parts;
  parts.reserve(vals.size());
  for (const auto& v : vals) parts.push_back(v.ToString());
  return FactTableName(id) + "(" + Join(parts, ", ") + ")";
}

}  // namespace lshap
