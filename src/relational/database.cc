#include "relational/database.h"

#include "common/check.h"
#include "common/strings.h"

namespace lshap {

Status Database::AddTable(Schema schema) {
  const std::string& name = schema.table_name();
  if (table_index_.count(name) > 0) {
    return Status::InvalidArgument("duplicate table '" + name + "'");
  }
  table_index_[name] = static_cast<uint32_t>(tables_.size());
  tables_.emplace_back(Table(std::move(schema), &pool_));
  return Status::Ok();
}

FactId Database::RegisterFact(uint32_t table_index, uint32_t row_index) {
  const FactId id = static_cast<FactId>(fact_locations_.size());
  fact_locations_.push_back({table_index, row_index});
  return id;
}

Result<FactId> Database::Insert(const std::string& table_name,
                                std::vector<Value> values) {
  auto idx = TableIndex(table_name);
  if (!idx.ok()) return idx.status();
  Table& table = tables_[*idx];
  const Schema& schema = table.schema();
  if (values.size() != schema.num_columns()) {
    return Status::InvalidArgument(
        StrFormat("arity mismatch inserting into '%s': got %zu, want %zu",
                  table_name.c_str(), values.size(), schema.num_columns()));
  }
  // Validate the whole row against the column types before touching any
  // column, so a failed insert leaves the table unchanged.
  for (size_t c = 0; c < values.size(); ++c) {
    const Value& v = values[c];
    const ColumnType want = schema.columns()[c].type;
    const bool ok = (want == ColumnType::kInt && v.is_int()) ||
                    (want == ColumnType::kDouble && !v.is_null() &&
                     !v.is_string()) ||
                    (want == ColumnType::kString && v.is_string());
    if (!ok) {
      return Status::InvalidArgument(StrFormat(
          "type mismatch inserting into '%s' column '%s' (%s): got %s",
          table_name.c_str(), schema.columns()[c].name.c_str(),
          ColumnTypeName(want), v.ToString().c_str()));
    }
  }
  TableAppender appender(this, *idx);
  appender.Begin();
  for (size_t c = 0; c < values.size(); ++c) {
    const Value& v = values[c];
    switch (schema.columns()[c].type) {
      case ColumnType::kInt:
        appender.Int(v.AsInt());
        break;
      case ColumnType::kDouble:
        appender.Real(v.AsDouble());
        break;
      case ColumnType::kString:
        appender.Str(v.AsString());
        break;
    }
  }
  return appender.Commit();
}

TableAppender Database::AppenderFor(const std::string& table_name) {
  auto idx = TableIndex(table_name);
  LSHAP_CHECK(idx.ok());
  return TableAppender(this, *idx);
}

Result<const Table*> Database::FindTable(const std::string& name) const {
  auto it = table_index_.find(name);
  if (it == table_index_.end()) {
    return Status::NotFound("no table '" + name + "' in database '" + name_ +
                            "'");
  }
  return static_cast<const Table*>(&tables_[it->second]);
}

Result<uint32_t> Database::TableIndex(const std::string& name) const {
  auto it = table_index_.find(name);
  if (it == table_index_.end()) {
    return Status::NotFound("no table '" + name + "' in database '" + name_ +
                            "'");
  }
  return it->second;
}

std::vector<Value> Database::FactValues(FactId id) const {
  LSHAP_CHECK_LT(id, fact_locations_.size());
  const FactLocation& loc = fact_locations_[id];
  return tables_[loc.table_index].DecodeRow(loc.row_index);
}

uint32_t Database::FactTableIndex(FactId id) const {
  LSHAP_CHECK_LT(id, fact_locations_.size());
  return fact_locations_[id].table_index;
}

const std::string& Database::FactTableName(FactId id) const {
  return tables_[FactTableIndex(id)].schema().table_name();
}

std::string Database::FactToString(FactId id) const {
  const std::vector<Value> vals = FactValues(id);
  std::vector<std::string> parts;
  parts.reserve(vals.size());
  for (const auto& v : vals) parts.push_back(v.ToString());
  return FactTableName(id) + "(" + Join(parts, ", ") + ")";
}

}  // namespace lshap
