#include "relational/database.h"

#include "common/check.h"
#include "common/strings.h"

namespace lshap {

Status Database::AddTable(Schema schema) {
  const std::string& name = schema.table_name();
  if (table_index_.count(name) > 0) {
    return Status::InvalidArgument("duplicate table '" + name + "'");
  }
  table_index_[name] = static_cast<uint32_t>(tables_.size());
  tables_.emplace_back(Table(std::move(schema), &pool_));
  return Status::Ok();
}

FactId Database::RegisterFact(uint32_t table_index, uint32_t row_index) {
  const FactId id = static_cast<FactId>(fact_locations_.size());
  fact_locations_.push_back({table_index, row_index});
  return id;
}

Result<FactId> Database::Insert(const std::string& table_name,
                                std::vector<Value> values) {
  auto idx = TableIndex(table_name);
  if (!idx.ok()) return idx.status();
  Table& table = tables_[*idx];
  const Schema& schema = table.schema();
  if (values.size() != schema.num_columns()) {
    return Status::InvalidArgument(
        StrFormat("arity mismatch inserting into '%s': got %zu, want %zu",
                  table_name.c_str(), values.size(), schema.num_columns()));
  }
  // Validate the whole row against the column types before touching any
  // column, so a failed insert leaves the table unchanged. Value::Null()
  // matches any column type.
  for (size_t c = 0; c < values.size(); ++c) {
    const Value& v = values[c];
    const ColumnType want = schema.columns()[c].type;
    const bool ok = v.is_null() ||
                    (want == ColumnType::kInt && v.is_int()) ||
                    (want == ColumnType::kDouble && !v.is_string()) ||
                    (want == ColumnType::kString && v.is_string());
    if (!ok) {
      return Status::InvalidArgument(StrFormat(
          "type mismatch inserting into '%s' column '%s' (%s): got %s",
          table_name.c_str(), schema.columns()[c].name.c_str(),
          ColumnTypeName(want), v.ToString().c_str()));
    }
  }
  TableAppender appender(this, *idx);
  appender.Begin();
  for (size_t c = 0; c < values.size(); ++c) {
    const Value& v = values[c];
    if (v.is_null()) {
      appender.Null();
      continue;
    }
    switch (schema.columns()[c].type) {
      case ColumnType::kInt:
        appender.Int(v.AsInt());
        break;
      case ColumnType::kDouble:
        appender.Real(v.AsDouble());
        break;
      case ColumnType::kString:
        appender.Str(v.AsString());
        break;
    }
  }
  return appender.Commit();
}

TableAppender Database::AppenderFor(const std::string& table_name) {
  auto idx = TableIndex(table_name);
  LSHAP_CHECK(idx.ok());
  return TableAppender(this, *idx);
}

Result<const Table*> Database::FindTable(const std::string& name) const {
  auto it = table_index_.find(name);
  if (it == table_index_.end()) {
    return Status::NotFound("no table '" + name + "' in database '" + name_ +
                            "'");
  }
  return static_cast<const Table*>(&tables_[it->second]);
}

Result<uint32_t> Database::TableIndex(const std::string& name) const {
  auto it = table_index_.find(name);
  if (it == table_index_.end()) {
    return Status::NotFound("no table '" + name + "' in database '" + name_ +
                            "'");
  }
  return it->second;
}

std::vector<Value> Database::FactValues(FactId id) const {
  LSHAP_CHECK_LT(id, fact_locations_.size());
  const FactLocation& loc = fact_locations_[id];
  return tables_[loc.table_index].DecodeRow(loc.row_index);
}

uint32_t Database::FactTableIndex(FactId id) const {
  LSHAP_CHECK_LT(id, fact_locations_.size());
  return fact_locations_[id].table_index;
}

const std::string& Database::FactTableName(FactId id) const {
  return tables_[FactTableIndex(id)].schema().table_name();
}

std::string Database::FactToString(FactId id) const {
  const std::vector<Value> vals = FactValues(id);
  std::vector<std::string> parts;
  parts.reserve(vals.size());
  for (const auto& v : vals) parts.push_back(v.ToString());
  return FactTableName(id) + "(" + Join(parts, ", ") + ")";
}

namespace {

inline constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ull;
inline constexpr uint64_t kFnvPrime = 0x100000001b3ull;

uint64_t FnvBytes(uint64_t h, const void* data, size_t n) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

uint64_t FnvWord(uint64_t h, uint64_t w) { return FnvBytes(h, &w, sizeof(w)); }

uint64_t FnvString(uint64_t h, std::string_view s) {
  h = FnvWord(h, s.size());
  return FnvBytes(h, s.data(), s.size());
}

}  // namespace

uint64_t FactTableFingerprint(const Database& db) {
  uint64_t h = kFnvOffset;
  h = FnvString(h, db.name());
  h = FnvWord(h, db.num_tables());
  for (size_t t = 0; t < db.num_tables(); ++t) {
    const Table& table = db.table(t);
    h = FnvString(h, table.schema().table_name());
    h = FnvWord(h, table.num_rows());
    h = FnvWord(h, table.num_columns());
    for (size_t c = 0; c < table.num_columns(); ++c) {
      const ColumnData& col = table.column(c);
      h = FnvWord(h, static_cast<uint64_t>(col.type()));
      switch (col.type()) {
        case ColumnType::kInt:
          h = FnvBytes(h, col.ints().data(),
                       col.ints().size() * sizeof(int64_t));
          break;
        case ColumnType::kDouble:
          h = FnvBytes(h, col.doubles().data(),
                       col.doubles().size() * sizeof(double));
          break;
        case ColumnType::kString:
          // Hash string contents, not interned ids: two independently built
          // but identical databases must fingerprint equal even if their
          // pools interned in a different order. A NULL cell's placeholder
          // id must never be dereferenced (it does not name a pooled
          // string); hash a marker impossible for real cells instead —
          // FnvString prefixes the length, so length SIZE_MAX is
          // unreachable by any interned string.
          if (col.has_nulls()) {
            const auto& ids = col.string_ids();
            for (size_t r = 0; r < ids.size(); ++r) {
              if (col.valid(r)) {
                h = FnvString(h, db.string_pool().Get(ids[r]));
              } else {
                h = FnvWord(h, ~uint64_t{0});
              }
            }
          } else {
            for (StringId id : col.string_ids()) {
              h = FnvString(h, db.string_pool().Get(id));
            }
          }
          break;
      }
      // Validity words participate only when nulls exist, keeping all-valid
      // fingerprints identical to the pre-null scheme. Trailing bits of the
      // last word are canonically zero, so this is a stable byte image.
      if (col.has_nulls()) {
        h = FnvWord(h, col.null_count());
        h = FnvBytes(h, col.validity_words().data(),
                     col.validity_words().size() * sizeof(uint64_t));
      }
    }
  }
  return h;
}

}  // namespace lshap
