#include "relational/string_pool.h"

#include "common/check.h"

namespace lshap {

StringId StringPool::Intern(std::string_view s) {
  auto it = index_.find(s);
  if (it != index_.end()) return it->second;
  const StringId id = static_cast<StringId>(by_id_.size());
  LSHAP_CHECK_LT(id, kInvalidStringId);
  auto [node, inserted] = index_.emplace(std::string(s), id);
  LSHAP_CHECK(inserted);
  by_id_.push_back(&node->first);
  return id;
}

StringId StringPool::Find(std::string_view s) const {
  auto it = index_.find(s);
  return it == index_.end() ? kInvalidStringId : it->second;
}

const std::string& StringPool::Get(StringId id) const {
  LSHAP_CHECK_LT(id, by_id_.size());
  return *by_id_[id];
}

}  // namespace lshap
