#include "relational/string_pool.h"

#include <algorithm>

#include "common/check.h"

namespace lshap {

StringId StringPool::Intern(std::string_view s) {
  auto it = index_.find(s);
  if (it != index_.end()) return it->second;
  const StringId id = static_cast<StringId>(by_id_.size());
  LSHAP_CHECK_LT(id, kInvalidStringId);
  auto [node, inserted] = index_.emplace(std::string(s), id);
  LSHAP_CHECK(inserted);
  by_id_.push_back(&node->first);
  return id;
}

StringId StringPool::Find(std::string_view s) const {
  auto it = index_.find(s);
  return it == index_.end() ? kInvalidStringId : it->second;
}

const std::string& StringPool::Get(StringId id) const {
  LSHAP_CHECK_LT(id, by_id_.size());
  return *by_id_[id];
}

void StringPool::RebuildOrderIndex() {
  const size_t n = by_id_.size();
  sorted_.resize(n);
  for (size_t i = 0; i < n; ++i) sorted_[i] = static_cast<StringId>(i);
  std::sort(sorted_.begin(), sorted_.end(), [this](StringId a, StringId b) {
    return *by_id_[a] < *by_id_[b];
  });
  rank_of_.resize(n);
  for (size_t r = 0; r < n; ++r) rank_of_[sorted_[r]] = static_cast<uint32_t>(r);
  order_generation_ = n;
}

uint32_t StringPool::Rank(StringId id) const {
  LSHAP_CHECK(OrderIndexFresh());
  LSHAP_CHECK_LT(id, rank_of_.size());
  return rank_of_[id];
}

const std::vector<uint32_t>& StringPool::ranks() const {
  LSHAP_CHECK(OrderIndexFresh());
  return rank_of_;
}

uint32_t StringPool::RankLowerBound(std::string_view s) const {
  LSHAP_CHECK(OrderIndexFresh());
  auto it = std::partition_point(
      sorted_.begin(), sorted_.end(),
      [this, s](StringId id) { return std::string_view(*by_id_[id]) < s; });
  return static_cast<uint32_t>(it - sorted_.begin());
}

uint32_t StringPool::RankUpperBound(std::string_view s) const {
  LSHAP_CHECK(OrderIndexFresh());
  auto it = std::partition_point(
      sorted_.begin(), sorted_.end(),
      [this, s](StringId id) { return std::string_view(*by_id_[id]) <= s; });
  return static_cast<uint32_t>(it - sorted_.begin());
}

std::pair<uint32_t, uint32_t> StringPool::PrefixRankRange(
    std::string_view prefix) const {
  LSHAP_CHECK(OrderIndexFresh());
  // A string x sorts before the prefix interval iff x < prefix, and inside
  // it iff x starts with prefix; both conditions compare only the first
  // |prefix| characters, so the partition predicate for the interval's end
  // is compare(first |prefix| chars, prefix) <= 0 (shorter strings that are
  // proper prefixes of `prefix` compare < 0 and sort before the interval).
  const uint32_t lo = RankLowerBound(prefix);
  auto it = std::partition_point(
      sorted_.begin() + lo, sorted_.end(), [this, prefix](StringId id) {
        return std::string_view(*by_id_[id])
                   .compare(0, prefix.size(), prefix) <= 0;
      });
  return {lo, static_cast<uint32_t>(it - sorted_.begin())};
}

}  // namespace lshap
