#ifndef LSHAP_RELATIONAL_DATABASE_H_
#define LSHAP_RELATIONAL_DATABASE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "relational/table.h"
#include "relational/string_pool.h"
#include "relational/value.h"

namespace lshap {

// A database: a disjoint union of named relations, a fact registry that
// resolves FactIds back to (table, row), and the string dictionary shared by
// every string column.
class Database {
 public:
  explicit Database(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  const StringPool& string_pool() const { return pool_; }

  // Builds the string pool's lexicographic rank sidecar over everything
  // interned so far — the "pool freeze" hook the dataset generators call
  // once after ingest, enabling id-space ordered/prefix predicates in the
  // evaluator. Inserting rows with new strings afterwards makes the sidecar
  // stale again (the evaluator then falls back to text comparisons until
  // the next call); freezing is a promise of stability, not an enforcement.
  void FreezeStringOrder() { pool_.RebuildOrderIndex(); }

  // True while the order sidecar covers every interned string — what a
  // serving snapshot asserts before publishing a database as immutable.
  bool string_order_fresh() const { return pool_.OrderIndexFresh(); }

  // Registers a new empty table; fails on duplicate names.
  Status AddTable(Schema schema);

  // Appends a row through the Value boundary; values must match the schema's
  // arity and column types (ints promote into kDouble columns; Value::Null()
  // is accepted for any column type and stores a NULL cell). Returns the new
  // fact's id.
  Result<FactId> Insert(const std::string& table_name,
                        std::vector<Value> values);

  // Typed bulk-append cursor for `table_name` (CHECK-fails if unknown).
  TableAppender AppenderFor(const std::string& table_name);

  size_t num_tables() const { return tables_.size(); }
  size_t num_facts() const { return fact_locations_.size(); }

  const Table& table(size_t i) const { return tables_[i]; }
  Result<const Table*> FindTable(const std::string& name) const;
  Result<uint32_t> TableIndex(const std::string& name) const;

  // Resolves a fact id to its table index and decoded row values.
  std::vector<Value> FactValues(FactId id) const;
  uint32_t FactTableIndex(FactId id) const;
  const std::string& FactTableName(FactId id) const;

  // Renders a fact as "table(v1, v2, ...)" — used for logging, examples and
  // as the model's fact serialization source.
  std::string FactToString(FactId id) const;

 private:
  friend class TableAppender;

  struct FactLocation {
    uint32_t table_index;
    uint32_t row_index;
  };

  FactId RegisterFact(uint32_t table_index, uint32_t row_index);

  std::string name_;
  StringPool pool_;
  std::vector<Table> tables_;
  std::unordered_map<std::string, uint32_t> table_index_;
  std::vector<FactLocation> fact_locations_;
};

// FNV-1a fingerprint of the database's fact table: table names, schemas and
// every cell (string cells hash by content, not by interned id, so two
// independently built but identical databases fingerprint equal). Columns
// that hold NULLs additionally hash their validity bitmap words, so two
// databases differing only in which cells are NULL fingerprint differently;
// all-valid columns hash exactly as before nulls existed. Corpus files
// record it so a loader can prove the corpus was built over exactly this
// database, not merely one with the same name and fact count.
uint64_t FactTableFingerprint(const Database& db);

}  // namespace lshap

#endif  // LSHAP_RELATIONAL_DATABASE_H_
