#ifndef LSHAP_RELATIONAL_DATABASE_H_
#define LSHAP_RELATIONAL_DATABASE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "relational/schema.h"
#include "relational/value.h"

namespace lshap {

// Globally unique identifier of a database fact (the "annotation" of
// provenance semirings). FactIds double as the boolean variables of
// provenance expressions.
using FactId = uint32_t;
inline constexpr FactId kInvalidFactId = static_cast<FactId>(-1);

// One input tuple ("fact" in the paper's terminology).
struct Fact {
  FactId id = kInvalidFactId;
  uint32_t table_index = 0;
  std::vector<Value> values;
};

// A relation instance: schema plus annotated rows.
class Table {
 public:
  explicit Table(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return rows_.size(); }

  const std::vector<Value>& row(size_t i) const { return rows_[i]; }
  FactId fact_id(size_t i) const { return fact_ids_[i]; }

  const std::vector<std::vector<Value>>& rows() const { return rows_; }
  const std::vector<FactId>& fact_ids() const { return fact_ids_; }

 private:
  friend class Database;

  void AppendRow(std::vector<Value> values, FactId id) {
    rows_.push_back(std::move(values));
    fact_ids_.push_back(id);
  }

  Schema schema_;
  std::vector<std::vector<Value>> rows_;
  std::vector<FactId> fact_ids_;
};

// A database: a disjoint union of named relations plus a fact registry that
// resolves FactIds back to (table, row).
class Database {
 public:
  explicit Database(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  // Registers a new empty table; fails on duplicate names.
  Status AddTable(Schema schema);

  // Appends a row; values must match the schema arity. Returns the new
  // fact's id.
  Result<FactId> Insert(const std::string& table_name,
                        std::vector<Value> values);

  size_t num_tables() const { return tables_.size(); }
  size_t num_facts() const { return fact_locations_.size(); }

  const Table& table(size_t i) const { return tables_[i]; }
  Result<const Table*> FindTable(const std::string& name) const;
  Result<uint32_t> TableIndex(const std::string& name) const;

  // Resolves a fact id to its table index and row values.
  const std::vector<Value>& FactValues(FactId id) const;
  uint32_t FactTableIndex(FactId id) const;
  const std::string& FactTableName(FactId id) const;

  // Renders a fact as "table(v1, v2, ...)" — used for logging, examples and
  // as the model's fact serialization source.
  std::string FactToString(FactId id) const;

 private:
  struct FactLocation {
    uint32_t table_index;
    uint32_t row_index;
  };

  std::string name_;
  std::vector<Table> tables_;
  std::unordered_map<std::string, uint32_t> table_index_;
  std::vector<FactLocation> fact_locations_;
};

}  // namespace lshap

#endif  // LSHAP_RELATIONAL_DATABASE_H_
