#ifndef LSHAP_RELATIONAL_TUPLE_H_
#define LSHAP_RELATIONAL_TUPLE_H_

#include <string>
#include <vector>

#include "relational/value.h"

namespace lshap {

// An output tuple of a query (the paper's "tuple", as opposed to input
// "facts"). Output tuples are plain value vectors; identity is by value,
// which is what witness-based similarity compares.
using OutputTuple = std::vector<Value>;

struct OutputTupleHash {
  size_t operator()(const OutputTuple& t) const {
    size_t h = 0x51ed270b;
    for (const Value& v : t) {
      h ^= v.Hash() + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    }
    return h;
  }
};

std::string OutputTupleToString(const OutputTuple& t);

}  // namespace lshap

#endif  // LSHAP_RELATIONAL_TUPLE_H_
