#ifndef LSHAP_RELATIONAL_TUPLE_H_
#define LSHAP_RELATIONAL_TUPLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "relational/value.h"

namespace lshap {

// An output tuple of a query (the paper's "tuple", as opposed to input
// "facts"). Output tuples are plain value vectors; identity is by value,
// which is what witness-based similarity compares. This is a boundary type:
// inside the evaluator, tuples live as EncodedTuples (below) and only
// distinct tuples are materialized as Values.
using OutputTuple = std::vector<Value>;

// splitmix64 finalizer — full-avalanche mix of one 64-bit word.
inline uint64_t MixWord(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

struct OutputTupleHash {
  size_t operator()(const OutputTuple& t) const {
    uint64_t h = 0x51ed270b;
    for (const Value& v : t) h = MixWord(h ^ v.Hash());
    return static_cast<size_t>(h);
  }
};

// A fixed-width encoding of an output tuple: one 64-bit word per cell
// (raw int64 bits, canonicalized double bits, or interned StringId — see
// ColumnData::KeyWord). Within one SPJ block the projected column types are
// fixed, so two derivations produce the same output tuple iff their encoded
// words match — which makes hashing and equality on the evaluator's
// DISTINCT path straight word operations, no variant dispatch and no string
// traversal.
using EncodedTuple = std::vector<uint64_t>;

struct EncodedTupleHash {
  size_t operator()(const EncodedTuple& t) const {
    uint64_t h = 0x51ed270b ^ t.size();
    for (uint64_t w : t) h = MixWord(h ^ w);
    return static_cast<size_t>(h);
  }
};

std::string OutputTupleToString(const OutputTuple& t);

}  // namespace lshap

#endif  // LSHAP_RELATIONAL_TUPLE_H_
