#include "relational/tuple.h"

#include "common/strings.h"

namespace lshap {

std::string OutputTupleToString(const OutputTuple& t) {
  std::vector<std::string> parts;
  parts.reserve(t.size());
  for (const Value& v : t) parts.push_back(v.ToString());
  return "(" + Join(parts, ", ") + ")";
}

}  // namespace lshap
