#ifndef LSHAP_RELATIONAL_SCHEMA_H_
#define LSHAP_RELATIONAL_SCHEMA_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "relational/value.h"

namespace lshap {

// A named, typed column.
struct Column {
  std::string name;
  ColumnType type;
};

// The schema of one relation: its name plus ordered columns.
class Schema {
 public:
  Schema() = default;
  Schema(std::string table_name, std::vector<Column> columns)
      : table_name_(std::move(table_name)), columns_(std::move(columns)) {}

  const std::string& table_name() const { return table_name_; }
  const std::vector<Column>& columns() const { return columns_; }
  size_t num_columns() const { return columns_.size(); }

  // Index of the named column, or kNotFound.
  Result<size_t> ColumnIndex(const std::string& name) const;

  bool HasColumn(const std::string& name) const;

  std::string ToString() const;

 private:
  std::string table_name_;
  std::vector<Column> columns_;
};

}  // namespace lshap

#endif  // LSHAP_RELATIONAL_SCHEMA_H_
