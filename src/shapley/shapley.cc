#include "shapley/shapley.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <map>
#include <utility>

#include "common/check.h"
#include "common/strings.h"
#include "provenance/circuit.h"
#include "provenance/compiler.h"
#include "provenance/tseytin.h"

namespace lshap {

namespace {

// Shapley coalition weight for coalition size k out of n players:
// k!(n-k-1)!/n! = 1 / (n * C(n-1, k)).
long double ShapleyWeight(size_t n, size_t k) {
  const CountVec& row = BinomialRow(n - 1);
  return 1.0L / (static_cast<long double>(n) * row[k]);
}

}  // namespace

Result<ShapleyValues> ComputeShapleyExact(const Dnf& provenance,
                                          ExecutionBudget& budget) {
  ShapleyValues out;
  const std::vector<FactId> lineage = provenance.Variables();
  const size_t n = lineage.size();
  if (n == 0) return out;

  DnfCompiler compiler;
  Result<std::unique_ptr<Circuit>> compiled =
      compiler.Compile(provenance, budget);
  if (!compiled.ok()) return compiled.status();
  std::unique_ptr<Circuit> circuit = std::move(compiled).value();
  const NodeId root = circuit->root();
  CountingSession session(circuit.get());

  for (FactId f : lineage) {
    // Each per-fact pass re-traverses at most the whole circuit, which is
    // within the node budget already charged — so a poll per fact bounds
    // the counting phase at circuit-size granularity.
    Status s = budget.Check(kSiteShapleyCount);
    if (!s.ok()) return s;
    // Counts of subsets E ⊆ lineage \ {f} of each size satisfying Φ with f
    // forced true / false. The circuit support may be smaller than the
    // lineage (absorbed-clause variables are null players); extension adds
    // the missing variables as free.
    CountVec c1 = ExtendCounts(session.Forced(root, f, true), n - 1);
    CountVec c0 = ExtendCounts(session.Forced(root, f, false), n - 1);
    long double value = 0.0L;
    for (size_t k = 0; k < n; ++k) {
      const long double pivotal = c1[k] - c0[k];
      if (pivotal != 0.0L) value += ShapleyWeight(n, k) * pivotal;
    }
    out[f] = static_cast<double>(value);
  }
  return out;
}

Result<ShapleyValues> ComputeBanzhafExact(const Dnf& provenance,
                                          ExecutionBudget& budget) {
  ShapleyValues out;
  const std::vector<FactId> lineage = provenance.Variables();
  const size_t n = lineage.size();
  if (n == 0) return out;

  DnfCompiler compiler;
  Result<std::unique_ptr<Circuit>> circuit =
      compiler.Compile(provenance, budget);
  if (!circuit.ok()) return circuit.status();
  const NodeId root = (*circuit)->root();
  CountingSession session(circuit->get());

  // Banzhaf(f) = (#E with Φ[f=1] − #E with Φ[f=0]) / 2^(n-1): total model
  // counts, uniformly weighted over coalition sizes.
  const long double denom = std::pow(2.0L, static_cast<long double>(n - 1));
  for (FactId f : lineage) {
    Status status = budget.Check(kSiteBanzhafCount);
    if (!status.ok()) return status;
    CountVec c1 = ExtendCounts(session.Forced(root, f, true), n - 1);
    CountVec c0 = ExtendCounts(session.Forced(root, f, false), n - 1);
    long double pivotal = 0.0L;
    for (size_t k = 0; k < n; ++k) pivotal += c1[k] - c0[k];
    out[f] = static_cast<double>(pivotal / denom);
  }
  return out;
}

Result<ShapleyValues> ComputeShapleyBrute(const Dnf& provenance) {
  ShapleyValues out;
  const std::vector<FactId> lineage = provenance.Variables();
  const size_t n = lineage.size();
  if (n == 0) return out;
  if (n > 25) {
    return Status::InvalidArgument(
        StrFormat("brute-force Shapley refused: %zu variables (max 25)", n));
  }

  // Evaluate Φ for every subset mask once.
  const size_t num_masks = size_t{1} << n;
  std::vector<bool> sat(num_masks);
  std::vector<FactId> present;
  present.reserve(n);
  for (size_t mask = 0; mask < num_masks; ++mask) {
    present.clear();
    for (size_t i = 0; i < n; ++i) {
      if (mask & (size_t{1} << i)) present.push_back(lineage[i]);
    }
    sat[mask] = provenance.Evaluate(present);
  }

  for (size_t i = 0; i < n; ++i) {
    const size_t bit = size_t{1} << i;
    long double value = 0.0L;
    for (size_t mask = 0; mask < num_masks; ++mask) {
      if (mask & bit) continue;  // E must exclude f
      const int delta = static_cast<int>(sat[mask | bit]) -
                        static_cast<int>(sat[mask]);
      if (delta == 0) continue;
      const size_t k = static_cast<size_t>(__builtin_popcountll(mask));
      value += ShapleyWeight(n, k) * delta;
    }
    out[lineage[i]] = static_cast<double>(value);
  }
  return out;
}

Result<ShapleyValues> ComputeShapleyMonteCarlo(const Dnf& provenance,
                                               size_t num_samples, Rng& rng,
                                               ExecutionBudget& budget) {
  ShapleyValues out;
  std::vector<FactId> lineage = provenance.Variables();
  const size_t n = lineage.size();
  if (n == 0) return out;
  for (FactId f : lineage) out[f] = 0.0;

  const bool budgeted = !budget.unlimited();
  std::vector<FactId> order = lineage;
  std::vector<FactId> present;
  present.reserve(n);
  for (size_t s = 0; s < num_samples; ++s) {
    if (budgeted) {
      Status status = budget.Charge(1, kSiteShapleyMcSample);
      if (!status.ok()) return status;
    }
    rng.Shuffle(order);
    present.clear();
    bool prev = provenance.Evaluate(present);  // false unless empty clause
    for (FactId f : order) {
      present.insert(std::upper_bound(present.begin(), present.end(), f), f);
      const bool now = prev || provenance.Evaluate(present);
      if (now && !prev) out[f] += 1.0;
      prev = now;
      // Monotone: once satisfied, later players are never pivotal in this
      // permutation.
      if (prev) break;
    }
  }
  for (auto& [f, v] : out) v /= static_cast<double>(num_samples);
  return out;
}

Result<ShapleyValues> ComputeShapleyStratified(const Dnf& provenance,
                                               const std::vector<uint32_t>& strata,
                                               size_t num_samples, Rng& rng,
                                               ExecutionBudget& budget,
                                               const StratifiedMcOptions& options) {
  ShapleyValues out;
  const std::vector<FactId> lineage = provenance.Variables();
  const size_t n = lineage.size();
  if (strata.size() != n) {
    return Status::InvalidArgument(
        StrFormat("stratified Shapley: %zu strata for %zu lineage facts",
                  strata.size(), n));
  }
  if (n == 0) return out;
  if (num_samples == 0) {
    return Status::InvalidArgument(
        "stratified Shapley requires num_samples >= 1");
  }
  for (FactId f : lineage) out[f] = 0.0;

  const bool budgeted = !budget.unlimited();

  // Group lineage positions by stratum, iterated in ascending stratum id so
  // the allocation (and therefore every subsequent rng draw) is
  // deterministic regardless of how the caller discovered the strata.
  std::map<uint32_t, std::vector<size_t>> groups;
  for (size_t i = 0; i < n; ++i) groups[strata[i]].push_back(i);

  // Pilot pass: plain permutation walks whose per-fact pivot counts feed the
  // per-stratum variance proxy. Used for allocation only — pilot pivots are
  // not folded into the estimate, keeping it a pure position-stratified
  // marginal-sample average.
  size_t pilot = options.pilot_permutations;
  if (groups.size() < 2 || num_samples < 2 * pilot) pilot = 0;
  std::vector<double> pivot_rate;
  if (pilot > 0) {
    std::vector<size_t> pivots(n, 0);
    std::vector<FactId> order = lineage;
    std::vector<FactId> present;
    present.reserve(n);
    for (size_t s = 0; s < pilot; ++s) {
      if (budgeted) {
        Status status = budget.Charge(1, kSiteShapleyStratPilot);
        if (!status.ok()) return status;
      }
      rng.Shuffle(order);
      present.clear();
      bool prev = provenance.Evaluate(present);
      for (FactId f : order) {
        present.insert(std::upper_bound(present.begin(), present.end(), f),
                       f);
        const bool now = prev || provenance.Evaluate(present);
        if (now && !prev) {
          const size_t idx = static_cast<size_t>(
              std::lower_bound(lineage.begin(), lineage.end(), f) -
              lineage.begin());
          ++pivots[idx];
        }
        prev = now;
        if (prev) break;
      }
    }
    // Smoothed pivot-rate estimate: strata that never pivoted in the pilot
    // keep a small floor so they are never starved to the 1-sample minimum
    // on pilot noise alone.
    pivot_rate.resize(n);
    for (size_t i = 0; i < n; ++i) {
      pivot_rate[i] = (static_cast<double>(pivots[i]) + 0.5) /
                      (static_cast<double>(pilot) + 1.0);
    }
  }

  // Per-fact sample allocation. The pool is n * num_samples marginal
  // samples; every fact is guaranteed one, and the surplus is split across
  // strata by Neyman weight w_r = sqrt(N_r * V_r) (proportional-to-size
  // when the pilot was skipped) with deterministic largest-remainder
  // rounding, then spread evenly inside each stratum (remainder to the
  // earliest lineage positions). Sums to the pool exactly.
  std::vector<size_t> alloc(n, num_samples);
  if (pilot > 0) {
    const size_t surplus = n * num_samples - n;
    std::vector<double> weight;
    double total_weight = 0.0;
    weight.reserve(groups.size());
    for (const auto& [sid, members] : groups) {
      double variance = 0.0;
      for (size_t i : members) {
        variance += pivot_rate[i] * (1.0 - pivot_rate[i]);
      }
      const double w =
          std::sqrt(static_cast<double>(members.size()) * variance);
      weight.push_back(w);
      total_weight += w;
    }
    size_t g = 0;
    size_t assigned = 0;
    std::vector<std::pair<double, size_t>> remainders;  // (frac, group idx)
    std::vector<size_t> group_share(groups.size(), 0);
    for (const auto& [sid, members] : groups) {
      const double share = total_weight > 0.0
                               ? static_cast<double>(surplus) * weight[g] /
                                     total_weight
                               : static_cast<double>(surplus) *
                                     static_cast<double>(members.size()) /
                                     static_cast<double>(n);
      const size_t whole = static_cast<size_t>(share);
      group_share[g] = whole;
      assigned += whole;
      remainders.emplace_back(share - static_cast<double>(whole), g);
      ++g;
    }
    std::sort(remainders.begin(), remainders.end(),
              [](const auto& a, const auto& b) {
                if (a.first != b.first) return a.first > b.first;
                return a.second < b.second;
              });
    for (size_t leftover = surplus - assigned, r = 0; leftover > 0;
         --leftover, ++r) {
      ++group_share[remainders[r % remainders.size()].second];
    }
    g = 0;
    for (const auto& [sid, members] : groups) {
      const size_t base = group_share[g] / members.size();
      const size_t extra = group_share[g] % members.size();
      for (size_t j = 0; j < members.size(); ++j) {
        alloc[members[j]] = 1 + base + (j < extra ? 1 : 0);
      }
      ++g;
    }
  }

  // Main pass: per-fact marginal samples, coalition sizes stratified over
  // contiguous position bins (with m_f >= n every size is hit; below n the
  // bins tile [0, n) so the size axis is still covered systematically).
  std::vector<FactId> others(n > 0 ? n - 1 : 0);
  std::vector<FactId> coalition;
  coalition.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    others.clear();
    for (size_t j = 0; j < n; ++j) {
      if (j != i) others.push_back(lineage[j]);
    }
    const size_t mi = alloc[i];
    const size_t bins = std::min(n, mi);
    const size_t per_bin = mi / bins;
    const size_t extra = mi % bins;
    long double phi = 0.0L;
    for (size_t b = 0; b < bins; ++b) {
      const size_t lo = b * n / bins;
      const size_t hi = (b + 1) * n / bins;
      const size_t width = hi - lo;
      const size_t mb = per_bin + (b < extra ? 1 : 0);
      size_t hits = 0;
      for (size_t t = 0; t < mb; ++t) {
        if (budgeted) {
          Status status = budget.Charge(1, kSiteShapleyStratSample);
          if (!status.ok()) return status;
        }
        const size_t k =
            lo + (width > 1 ? rng.NextBounded(width) : 0);
        // Uniform k-subset of lineage \ {f} by partial Fisher-Yates; the
        // scratch stays permuted across samples, which preserves
        // uniformity.
        for (size_t j = 0; j < k; ++j) {
          const size_t swap_with =
              j + static_cast<size_t>(rng.NextBounded(others.size() - j));
          std::swap(others[j], others[swap_with]);
        }
        coalition.assign(others.begin(),
                         others.begin() + static_cast<ptrdiff_t>(k));
        std::sort(coalition.begin(), coalition.end());
        if (!provenance.Evaluate(coalition)) {
          coalition.insert(std::upper_bound(coalition.begin(),
                                            coalition.end(), lineage[i]),
                           lineage[i]);
          // Monotone, so Δ ∈ {0, 1} and Φ(S) true implies Φ(S∪{f}) true —
          // the second evaluation only matters when the first failed.
          if (provenance.Evaluate(coalition)) ++hits;
        }
      }
      phi += (static_cast<long double>(width) / static_cast<long double>(n)) *
             (static_cast<long double>(hits) / static_cast<long double>(mb));
    }
    out[lineage[i]] = static_cast<double>(phi);
  }
  return out;
}

Result<ShapleyValues> ComputeCnfProxy(const Dnf& provenance,
                                      ExecutionBudget& budget) {
  ShapleyValues out;
  const std::vector<FactId> lineage = provenance.Variables();
  if (lineage.empty()) return out;
  for (FactId f : lineage) out[f] = 0.0;

  const CnfFormula cnf = TseytinFromDnf(provenance);
  const size_t n = cnf.num_variables;
  const bool budgeted = !budget.unlimited();

  // Shapley value, in the single-clause OR-game over universe size n, of a
  // positive/negative literal. For a clause with p positive and q negative
  // literals:
  //   positive lit x: pivotal coalitions E (excluding x) contain all q
  //     negated vars, none of the other p-1 positive vars; with m free vars
  //     the count at size k is C(m, k - q).
  //   negative lit x: pivotal (negatively) E contain the other q-1 negated
  //     vars, none of the p positive vars; contribution is negative.
  std::vector<double> scores(n, 0.0);
  for (const auto& clause : cnf.clauses) {
    if (budgeted) {
      Status status = budget.Check(kSiteCnfProxy);
      if (!status.ok()) return status;
    }
    size_t p = 0;
    size_t q = 0;
    for (const auto& lit : clause) {
      if (lit.positive) {
        ++p;
      } else {
        ++q;
      }
    }
    const size_t m = n - p - q;  // vars not mentioned by the clause
    for (const auto& lit : clause) {
      const CountVec& free_row = BinomialRow(m);
      long double value = 0.0L;
      if (lit.positive) {
        // E = (all q negated) ∪ (j of m free), size k = q + j.
        for (size_t j = 0; j <= m; ++j) {
          const size_t k = q + j;
          value += ShapleyWeight(n, k) * free_row[j];
        }
        scores[lit.var] += static_cast<double>(value);
      } else {
        // E = (other q-1 negated) ∪ (j of m free), size k = q - 1 + j,
        // and adding x destroys satisfaction: negative contribution.
        for (size_t j = 0; j <= m; ++j) {
          const size_t k = q - 1 + j;
          value += ShapleyWeight(n, k) * free_row[j];
        }
        scores[lit.var] -= static_cast<double>(value);
      }
    }
  }
  for (size_t i = 0; i < cnf.num_original; ++i) {
    out[cnf.original_facts[i]] = scores[i];
  }
  return out;
}

// Unlimited wrappers (DESIGN.md §9.4): the budgeted form with an
// unlimited budget, which cannot trip.
ShapleyValues ComputeShapleyExactUnlimited(const Dnf& provenance) {
  ExecutionBudget unlimited = ExecutionBudget::Unlimited();
  Result<ShapleyValues> result = ComputeShapleyExact(provenance, unlimited);
  LSHAP_CHECK(result.ok());
  return std::move(result).value();
}

ShapleyValues ComputeShapleyMonteCarloUnlimited(const Dnf& provenance,
                                                size_t num_samples,
                                                Rng& rng) {
  ExecutionBudget unlimited = ExecutionBudget::Unlimited();
  Result<ShapleyValues> result =
      ComputeShapleyMonteCarlo(provenance, num_samples, rng, unlimited);
  LSHAP_CHECK(result.ok());
  return std::move(result).value();
}

ShapleyValues ComputeShapleyStratifiedUnlimited(
    const Dnf& provenance, const std::vector<uint32_t>& strata,
    size_t num_samples, Rng& rng, const StratifiedMcOptions& options) {
  ExecutionBudget unlimited = ExecutionBudget::Unlimited();
  Result<ShapleyValues> result = ComputeShapleyStratified(
      provenance, strata, num_samples, rng, unlimited, options);
  LSHAP_CHECK(result.ok());
  return std::move(result).value();
}

ShapleyValues ComputeBanzhafExactUnlimited(const Dnf& provenance) {
  ExecutionBudget unlimited = ExecutionBudget::Unlimited();
  Result<ShapleyValues> result = ComputeBanzhafExact(provenance, unlimited);
  LSHAP_CHECK(result.ok());
  return std::move(result).value();
}

ShapleyValues ComputeCnfProxyUnlimited(const Dnf& provenance) {
  ExecutionBudget unlimited = ExecutionBudget::Unlimited();
  Result<ShapleyValues> result = ComputeCnfProxy(provenance, unlimited);
  LSHAP_CHECK(result.ok());
  return std::move(result).value();
}

std::vector<FactId> RankByScore(const ShapleyValues& scores) {
  std::vector<std::pair<FactId, double>> items(scores.begin(), scores.end());
  std::sort(items.begin(), items.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  std::vector<FactId> out;
  out.reserve(items.size());
  for (const auto& [f, v] : items) out.push_back(f);
  return out;
}

}  // namespace lshap
