#include "shapley/aggregates.h"

#include <algorithm>

namespace lshap {

namespace {

// Shared implementation over an evaluated result: weight_fn(i) gives w_t
// for the i-th distinct output tuple.
template <typename WeightFn>
AggregateAttribution Attribute(const EvalResult& result, ThreadPool& pool,
                               const WeightFn& weight_fn) {
  AggregateAttribution out;
  std::vector<ShapleyValues> per_tuple(result.tuples.size());
  ParallelFor(pool, result.tuples.size(), [&](size_t i) {
    per_tuple[i] = ComputeShapleyExactUnlimited(result.provenance[i]);
  });
  for (size_t i = 0; i < result.tuples.size(); ++i) {
    const double w = weight_fn(i);
    out.total += w;
    for (const auto& [f, v] : per_tuple[i]) {
      out.values[f] += w * v;
    }
  }
  return out;
}

}  // namespace

Result<AggregateAttribution> ComputeShapleyForCount(const Database& db,
                                                    const Query& q,
                                                    ThreadPool& pool) {
  auto eval = Evaluate(db, q);
  if (!eval.ok()) return eval.status();
  return Attribute(*eval, pool, [](size_t) { return 1.0; });
}

Result<AggregateAttribution> ComputeShapleyForSum(const Database& db,
                                                  const Query& q,
                                                  const ColumnRef& column,
                                                  ThreadPool& pool) {
  if (q.blocks.empty()) {
    return Status::InvalidArgument("query with no blocks");
  }
  // The column's position must be consistent across union branches; SPJU
  // union requires identical projection arity, and we additionally require
  // the column itself at the same position.
  size_t position = static_cast<size_t>(-1);
  for (const auto& block : q.blocks) {
    auto it = std::find(block.projections.begin(), block.projections.end(),
                        column);
    if (it == block.projections.end()) {
      return Status::InvalidArgument("SUM column " + column.ToString() +
                                     " is not projected by every block");
    }
    const size_t pos =
        static_cast<size_t>(it - block.projections.begin());
    if (position == static_cast<size_t>(-1)) {
      position = pos;
    } else if (position != pos) {
      return Status::InvalidArgument(
          "SUM column position differs across UNION branches");
    }
  }

  auto eval = Evaluate(db, q);
  if (!eval.ok()) return eval.status();
  for (const auto& t : eval->tuples) {
    if (t[position].is_string() || t[position].is_null()) {
      return Status::InvalidArgument("SUM column " + column.ToString() +
                                     " is not numeric");
    }
  }
  const EvalResult& result = *eval;
  return Attribute(result, pool, [&](size_t i) {
    return result.tuples[i][position].AsDouble();
  });
}

}  // namespace lshap
