#ifndef LSHAP_SHAPLEY_AGGREGATES_H_
#define LSHAP_SHAPLEY_AGGREGATES_H_

#include "common/status.h"
#include "common/thread_pool.h"
#include "eval/evaluator.h"
#include "query/ast.h"
#include "shapley/shapley.h"

namespace lshap {

// Shapley attribution for aggregate queries — the fragment the paper notes
// has been studied in theory but has no available implementation.
//
// For an aggregate of the form  v(E) = Σ_t w_t · 1[t ∈ q(E)]  over the
// distinct output tuples of an SPJU query (w_t = 1 for COUNT, w_t = the
// tuple's value of a numeric column for SUM), linearity of the Shapley
// value gives  Shapley_f(v) = Σ_t w_t · Shapley_f(q_t),  so each term is
// computable exactly with the per-tuple circuit machinery.
//
// Note the set semantics: aggregates are over DISTINCT projected tuples,
// matching the engine's SPJU evaluation.
struct AggregateAttribution {
  // The aggregate value over the full database (= Σ_f values[f], by the
  // efficiency axiom, since v(∅) = 0 for monotone queries).
  double total = 0.0;
  // Shapley contribution of every fact in the union of all lineages.
  ShapleyValues values;
};

// Attribution for COUNT(DISTINCT *) of the query's output.
Result<AggregateAttribution> ComputeShapleyForCount(const Database& db,
                                                    const Query& q,
                                                    ThreadPool& pool);

// Attribution for SUM(column) over the distinct output tuples. `column`
// must appear in every block's projection list and be numeric.
Result<AggregateAttribution> ComputeShapleyForSum(const Database& db,
                                                  const Query& q,
                                                  const ColumnRef& column,
                                                  ThreadPool& pool);

}  // namespace lshap

#endif  // LSHAP_SHAPLEY_AGGREGATES_H_
