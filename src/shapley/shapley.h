#ifndef LSHAP_SHAPLEY_SHAPLEY_H_
#define LSHAP_SHAPLEY_SHAPLEY_H_

#include <unordered_map>
#include <vector>

#include "common/budget.h"
#include "common/rng.h"
#include "common/status.h"
#include "provenance/bool_expr.h"
#include "relational/database.h"

namespace lshap {

// Shapley values of all lineage facts with respect to one (query, output
// tuple) pair, keyed by fact id. Values are in [0, 1] and — for monotone
// provenance that is satisfiable with all facts present — sum to 1.
using ShapleyValues = std::unordered_map<FactId, double>;

// Budget check-site names exposed for fault-injection tests. The compiler's
// own site (kSiteCompilerExpand) additionally fires inside the exact engine.
inline constexpr char kSiteShapleyCount[] = "shapley.count";
inline constexpr char kSiteShapleyMcSample[] = "shapley.mc_sample";
inline constexpr char kSiteCnfProxy[] = "shapley.cnf_proxy";
inline constexpr char kSiteBanzhafCount[] = "banzhaf.count";

// Exact Shapley values of every variable of the provenance DNF, computed by
// compiling the DNF into a decision-DNNF circuit and counting satisfying
// assignments by size (the SIGMOD 2022 algorithm of Deutch et al.). The
// player universe is the lineage (facts outside it are null players, which
// by the Shapley null-player/dummy property does not change any value).
//
// The budget governs circuit compilation (node charges + deadline /
// cancellation polls) and is re-polled before each per-fact counting pass,
// so an exhausted budget yields kResourceExhausted (or kCancelled) instead
// of an exponential blow-up. The Unlimited variant (see the fallible-call
// convention in DESIGN.md §9.4) is this with an unlimited budget and
// cannot fail.
Result<ShapleyValues> ComputeShapleyExact(const Dnf& provenance,
                                          ExecutionBudget& budget);
ShapleyValues ComputeShapleyExactUnlimited(const Dnf& provenance);

// Exact Shapley values by brute-force subset enumeration. Exponential in
// the lineage size; lineages above 25 variables are refused with
// kInvalidArgument (callers can feed generated, untrusted-size provenance).
// Used as an independent oracle in tests.
Result<ShapleyValues> ComputeShapleyBrute(const Dnf& provenance);

// Monte-Carlo permutation-sampling estimate with `num_samples` random
// permutations. Unbiased; error ~ O(1/sqrt(num_samples)). Polls the budget
// once per sampled permutation and charges one work unit per sample. On a
// trip, the samples drawn so far are discarded and the error is returned (a
// truncated average would be biased toward early-permutation pivots).
Result<ShapleyValues> ComputeShapleyMonteCarlo(const Dnf& provenance,
                                               size_t num_samples, Rng& rng,
                                               ExecutionBudget& budget);
ShapleyValues ComputeShapleyMonteCarloUnlimited(const Dnf& provenance,
                                                size_t num_samples, Rng& rng);

// Exact Banzhaf values over the same circuits: the Banzhaf index replaces
// the Shapley coalition weights with a uniform 1/2^(n-1), i.e. the
// probability that f is pivotal for a uniformly random coalition. It is the
// other standard power index in fact attribution (studied by the same
// line of work as a cheaper alternative) and usually induces a very similar
// ranking; `bench_ext_banzhaf` quantifies the agreement. Budgeted like
// ComputeShapleyExact: compilation charges + a poll per counted fact.
Result<ShapleyValues> ComputeBanzhafExact(const Dnf& provenance,
                                          ExecutionBudget& budget);
ShapleyValues ComputeBanzhafExactUnlimited(const Dnf& provenance);

// The inexact "CNF Proxy" comparator of Deutch et al.: apply the Tseytin
// transformation to the provenance DNF and score each original fact by its
// exact Shapley value in the *clause-counting game* of the resulting CNF
// (value of a coalition = number of CNF clauses it satisfies). Each clause
// is an OR-game whose Shapley values have a closed form, and Shapley is
// linear across games, so the proxy is cheap to evaluate. Only the induced
// ranking is meaningful, not the magnitudes. The budget is polled per CNF
// clause; the proxy is polynomial, so in practice only fault injection or a
// cancelled token trips it — it exists so the corpus builder's last
// computing rung is governed like the others.
Result<ShapleyValues> ComputeCnfProxy(const Dnf& provenance,
                                      ExecutionBudget& budget);
ShapleyValues ComputeCnfProxyUnlimited(const Dnf& provenance);

// Ranks fact ids by descending score; ties broken by ascending fact id so
// rankings are deterministic.
std::vector<FactId> RankByScore(const ShapleyValues& scores);

}  // namespace lshap

#endif  // LSHAP_SHAPLEY_SHAPLEY_H_
