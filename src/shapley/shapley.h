#ifndef LSHAP_SHAPLEY_SHAPLEY_H_
#define LSHAP_SHAPLEY_SHAPLEY_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/budget.h"
#include "common/rng.h"
#include "common/status.h"
#include "provenance/bool_expr.h"
#include "relational/database.h"

namespace lshap {

// Shapley values of all lineage facts with respect to one (query, output
// tuple) pair, keyed by fact id. Values are in [0, 1] and — for monotone
// provenance that is satisfiable with all facts present — sum to 1.
using ShapleyValues = std::unordered_map<FactId, double>;

// Budget check-site names exposed for fault-injection tests. The compiler's
// own site (kSiteCompilerExpand) additionally fires inside the exact engine.
inline constexpr char kSiteShapleyCount[] = "shapley.count";
inline constexpr char kSiteShapleyMcSample[] = "shapley.mc_sample";
inline constexpr char kSiteShapleyStratPilot[] = "shapley.strat_pilot";
inline constexpr char kSiteShapleyStratSample[] = "shapley.strat_sample";
inline constexpr char kSiteCnfProxy[] = "shapley.cnf_proxy";
inline constexpr char kSiteBanzhafCount[] = "banzhaf.count";

// Every Compute* entry point below documents its budget-charging policy in
// the same format: a trailing "Budget:" paragraph stating what is polled
// (deadline / cancellation / fault checks, no units consumed) and what is
// charged (work units consumed against max_work_units) per unit of work.
// All budgeted variants follow the fallible-call convention of DESIGN.md
// §9.4: on a trip the error Status is returned and NO partial values leak
// out; the *Unlimited wrapper is the same computation with an unlimited
// budget and cannot fail.

// Exact Shapley values of every variable of the provenance DNF, computed by
// compiling the DNF into a decision-DNNF circuit and counting satisfying
// assignments by size (the SIGMOD 2022 algorithm of Deutch et al.). The
// player universe is the lineage (facts outside it are null players, which
// by the Shapley null-player/dummy property does not change any value).
//
// Budget: compilation charges one work unit per circuit node built and
// polls at kSiteCompilerExpand; the counting phase polls once per lineage
// fact at kSiteShapleyCount before that fact's circuit traversal (each
// traversal touches at most the node count already charged, so the poll
// bounds counting at circuit-size granularity).
Result<ShapleyValues> ComputeShapleyExact(const Dnf& provenance,
                                          ExecutionBudget& budget);
ShapleyValues ComputeShapleyExactUnlimited(const Dnf& provenance);

// Exact Shapley values by brute-force subset enumeration, used as an
// independent oracle in tests. Exponential in the lineage size.
//
// Contract: lineages above 25 variables are refused with kInvalidArgument
// rather than attempted — callers can feed generated, untrusted-size
// provenance, and 2^25 subset evaluations is the largest blow-up this
// entry point is willing to risk.
//
// Budget: none — the call takes no ExecutionBudget. The checked size
// contract above is the resource guard.
Result<ShapleyValues> ComputeShapleyBrute(const Dnf& provenance);

// Monte-Carlo permutation-sampling estimate with `num_samples` random
// permutations. Unbiased; per-fact standard error ~ O(1/sqrt(num_samples)).
//
// Budget: charges one work unit (with its implied deadline/cancel/fault
// poll) per sampled permutation at kSiteShapleyMcSample. One permutation
// walk costs up to n incremental DNF evaluations (monotone early-exit
// usually stops far sooner). On a trip, the samples drawn so far are
// discarded and the error is returned (a truncated average would be biased
// toward early-permutation pivots).
Result<ShapleyValues> ComputeShapleyMonteCarlo(const Dnf& provenance,
                                               size_t num_samples, Rng& rng,
                                               ExecutionBudget& budget);
ShapleyValues ComputeShapleyMonteCarloUnlimited(const Dnf& provenance,
                                                size_t num_samples, Rng& rng);

// Tuning knobs for ComputeShapleyStratified.
struct StratifiedMcOptions {
  // Plain permutation walks used as a pilot pass: they estimate each
  // stratum's marginal-contribution variance, which drives Neyman-style
  // allocation of the main sample pool (more samples to high-variance
  // strata). The pilot is skipped — falling back to deterministic
  // proportional allocation, every fact keeping exactly `num_samples`
  // marginal samples — when pilot_permutations is 0, when the lineage has
  // fewer than two strata, or when num_samples < 2 * pilot_permutations
  // (pool too small for reallocation to beat the pilot's own cost).
  size_t pilot_permutations = 64;
};

// Stratified Monte-Carlo estimate (arXiv 2511.22035-style): `strata[i]`
// names the relation of `provenance.Variables()[i]`, and `num_samples` is
// the per-fact sample budget, so total work is comparable to plain MC with
// the same `num_samples` (a permutation walk costs up to n evaluations; a
// marginal sample costs at most two).
//
// Instead of whole-permutation walks, each fact f gets m_f *marginal
// samples*: draw a coalition size k (stratified over contiguous position
// bins so every coalition-size region is covered — this removes the
// between-position variance component that plain MC resamples), draw a
// uniform k-subset S of lineage∖{f}, and score Δ = Φ(S∪{f}) − Φ(S). The
// per-fact budgets m_f are allocated across relation strata Neyman-style
// from the pilot pass (see StratifiedMcOptions), deterministically via
// largest-remainder rounding with every fact guaranteed at least one
// sample and Σ m_f == n·num_samples exactly. Deterministic given (rng
// seed, inputs, options). Returns kInvalidArgument if strata.size() does
// not match the lineage size or num_samples is 0.
//
// Budget: charges one work unit (with its implied deadline/cancel/fault
// poll) per pilot permutation walk at kSiteShapleyStratPilot and one per
// marginal sample at kSiteShapleyStratSample — a full run charges
// pilot_permutations + n·num_samples units. On a trip, everything drawn
// so far is discarded and the error is returned.
Result<ShapleyValues> ComputeShapleyStratified(
    const Dnf& provenance, const std::vector<uint32_t>& strata,
    size_t num_samples, Rng& rng, ExecutionBudget& budget,
    const StratifiedMcOptions& options = {});
ShapleyValues ComputeShapleyStratifiedUnlimited(
    const Dnf& provenance, const std::vector<uint32_t>& strata,
    size_t num_samples, Rng& rng, const StratifiedMcOptions& options = {});

// Exact Banzhaf values over the same circuits: the Banzhaf index replaces
// the Shapley coalition weights with a uniform 1/2^(n-1), i.e. the
// probability that f is pivotal for a uniformly random coalition. It is the
// other standard power index in fact attribution (studied by the same
// line of work as a cheaper alternative) and usually induces a very similar
// ranking; `bench_ext_banzhaf` quantifies the agreement.
//
// Budget: like ComputeShapleyExact — compilation charges one unit per
// circuit node (polling at kSiteCompilerExpand), then one poll per counted
// fact at kSiteBanzhafCount.
Result<ShapleyValues> ComputeBanzhafExact(const Dnf& provenance,
                                          ExecutionBudget& budget);
ShapleyValues ComputeBanzhafExactUnlimited(const Dnf& provenance);

// The inexact "CNF Proxy" comparator of Deutch et al.: apply the Tseytin
// transformation to the provenance DNF and score each original fact by its
// exact Shapley value in the *clause-counting game* of the resulting CNF
// (value of a coalition = number of CNF clauses it satisfies). Each clause
// is an OR-game whose Shapley values have a closed form, and Shapley is
// linear across games, so the proxy is cheap to evaluate. Only the induced
// ranking is meaningful, not the magnitudes.
//
// Budget: polls once per CNF clause at kSiteCnfProxy; no units are
// charged. The proxy is polynomial, so in practice only fault injection or
// a cancelled token trips it — it exists so the corpus builder's last
// computing rung is governed like the others.
Result<ShapleyValues> ComputeCnfProxy(const Dnf& provenance,
                                      ExecutionBudget& budget);
ShapleyValues ComputeCnfProxyUnlimited(const Dnf& provenance);

// Ranks fact ids by descending score; ties broken by ascending fact id so
// rankings are deterministic.
std::vector<FactId> RankByScore(const ShapleyValues& scores);

}  // namespace lshap

#endif  // LSHAP_SHAPLEY_SHAPLEY_H_
