// Micro-benchmarks of the relational core (google-benchmark): SPJU
// evaluation throughput under each provenance-capture mode, on an IMDB-like
// database ~10x the corpus default. This is the storage-layer hot path that
// bounds corpus construction (every `bench_table*` run) and lineage capture
// at inference time (Table 6), so it is the primary before/after gauge for
// storage-engine changes (see BENCH_pr1.json).
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "common/thread_pool.h"
#include "datasets/imdb.h"
#include "eval/evaluator.h"
#include "query/generator.h"

namespace lshap {
namespace {

// A database large enough that scans, join probes and output dedup dominate
// over per-query setup.
const GeneratedDb& BigImdb() {
  static const GeneratedDb* db = [] {
    ImdbConfig cfg;
    cfg.seed = 7;
    cfg.num_companies = 120;
    cfg.num_actors = 1200;
    cfg.num_movies = 2200;
    cfg.num_roles = 7000;
    return new GeneratedDb(MakeImdbDatabase(cfg));
  }();
  return *db;
}

// A fixed 60-query log over the big database (joins of 2-4 tables).
const std::vector<Query>& EvalLog() {
  static const std::vector<Query>* log = [] {
    QueryGenConfig cfg;
    cfg.min_tables = 2;
    cfg.max_tables = 4;
    QueryGenerator gen(BigImdb().db.get(), BigImdb().graph, cfg, 4242);
    return new std::vector<Query>(gen.GenerateLog(25, "micro"));
  }();
  return *log;
}

void RunLog(benchmark::State& state, ProvenanceCapture capture) {
  const Database& db = *BigImdb().db;
  const std::vector<Query>& log = EvalLog();
  const EvalOptions opts = EvalOptions().WithCapture(capture).WithMetrics(
      bench::BenchMetrics());
  size_t tuples = 0;
  for (auto _ : state) {
    tuples = 0;
    for (const Query& q : log) {
      auto result = Evaluate(db, q, opts);
      if (!result.ok()) continue;
      tuples += result->tuples.size();
      benchmark::DoNotOptimize(result->tuples.data());
    }
  }
  state.SetLabel("queries=" + std::to_string(log.size()) +
                 " tuples=" + std::to_string(tuples));
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(tuples));
}

void BM_EvalLogNone(benchmark::State& state) {
  RunLog(state, ProvenanceCapture::kNone);
}
BENCHMARK(BM_EvalLogNone)->Unit(benchmark::kMillisecond);

void BM_EvalLogLineage(benchmark::State& state) {
  RunLog(state, ProvenanceCapture::kLineageOnly);
}
BENCHMARK(BM_EvalLogLineage)->Unit(benchmark::kMillisecond);

void BM_EvalLogFull(benchmark::State& state) {
  RunLog(state, ProvenanceCapture::kFull);
}
BENCHMARK(BM_EvalLogFull)->Unit(benchmark::kMillisecond);

// Morsel-parallel evaluation of the same log; Arg = pool threads. The
// serial benchmarks above stay the regression gauge for the flat join
// index; these gauge thread scaling of the scan/probe/project pipeline.
void RunLogParallel(benchmark::State& state, ProvenanceCapture capture) {
  const Database& db = *BigImdb().db;
  const std::vector<Query>& log = EvalLog();
  ThreadPool pool(static_cast<size_t>(state.range(0)));
  const EvalOptions opts = EvalOptions()
                               .WithCapture(capture)
                               .WithPool(&pool)
                               .WithMetrics(bench::BenchMetrics());
  size_t tuples = 0;
  for (auto _ : state) {
    tuples = 0;
    for (const Query& q : log) {
      auto result = Evaluate(db, q, opts);
      if (!result.ok()) continue;
      tuples += result->tuples.size();
      benchmark::DoNotOptimize(result->tuples.data());
    }
  }
  state.SetLabel("queries=" + std::to_string(log.size()) +
                 " tuples=" + std::to_string(tuples));
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(tuples));
}

void BM_EvalLogNonePar(benchmark::State& state) {
  RunLogParallel(state, ProvenanceCapture::kNone);
}
BENCHMARK(BM_EvalLogNonePar)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_EvalLogLineagePar(benchmark::State& state) {
  RunLogParallel(state, ProvenanceCapture::kLineageOnly);
}
BENCHMARK(BM_EvalLogLineagePar)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_EvalLogFullPar(benchmark::State& state) {
  RunLogParallel(state, ProvenanceCapture::kFull);
}
BENCHMARK(BM_EvalLogFullPar)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

// Database construction itself (typed appends, string handling).
void BM_BuildImdb(benchmark::State& state) {
  ImdbConfig cfg;
  cfg.seed = 7;
  cfg.num_companies = 120;
  cfg.num_actors = 1200;
  cfg.num_movies = 2200;
  cfg.num_roles = 7000;
  for (auto _ : state) {
    GeneratedDb g = MakeImdbDatabase(cfg);
    benchmark::DoNotOptimize(g.db->num_facts());
  }
}
BENCHMARK(BM_BuildImdb)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace lshap

// BENCHMARK_MAIN() expanded by hand so the --metrics-json flag can be
// stripped before google-benchmark sees (and rejects) it.
int main(int argc, char** argv) {
  lshap::bench::InitBenchMetrics(&argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
