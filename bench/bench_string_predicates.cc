// Micro-benchmarks of string selection predicates (google-benchmark): the
// rank-interval path (order sidecar, PR 4) vs. the string-materializing
// path it replaced. Both run in this binary over the same database — the
// text path is preserved behind EvalOptions::use_string_ranks=false as the
// differential oracle, and IS the pre-PR-4 implementation, so the
// rank/text pair here is a faithful before/after (recorded in
// BENCH_pr4.json).
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "datasets/imdb.h"
#include "eval/evaluator.h"
#include "query/generator.h"

namespace lshap {
namespace {

// Larger than the eval-log database: string selections here are pure
// scans, so the tables must be big enough that the per-cell predicate cost
// dominates per-query setup.
const GeneratedDb& ScanImdb() {
  static const GeneratedDb* db = [] {
    ImdbConfig cfg;
    cfg.seed = 7;
    cfg.num_companies = 500;
    cfg.num_actors = 20000;
    cfg.num_movies = 40000;
    cfg.num_roles = 120000;
    return new GeneratedDb(MakeImdbDatabase(cfg));
  }();
  return *db;
}

// Hand-built single-table scans: an ordered-range selection and a prefix
// selection over the two biggest string columns. Literals are chosen to
// keep selectivity moderate (neither empty nor everything).
std::vector<Query> RangeScanQueries() {
  std::vector<Query> queries;
  auto make = [](const char* id, const char* table, const char* column,
                 CompareOp op, const char* literal, const char* proj) {
    SpjBlock b;
    b.tables = {table};
    b.selections.push_back({{table, column}, op, Value(literal)});
    b.projections = {{table, proj}};
    Query q;
    q.id = id;
    q.blocks.push_back(b);
    return q;
  };
  queries.push_back(
      make("lt_titles", "movies", "title", CompareOp::kLt, "Golden", "year"));
  queries.push_back(
      make("ge_roles", "roles", "movie", CompareOp::kGe, "Silent", "actor"));
  queries.push_back(make("between_hi", "movies", "title", CompareOp::kGt,
                         "Crimson", "company"));
  return queries;
}

// Narrow two-sided ranges (>= lo AND < hi) over the biggest string column:
// almost every row is scanned and rejected, so the per-cell predicate cost
// — the thing the rank sidecar replaces — dominates over result
// materialization. This is the cleanest before/after gauge.
std::vector<Query> SelectiveRangeQueries() {
  std::vector<Query> queries;
  auto make = [](const char* id, const char* lo, const char* hi) {
    SpjBlock b;
    b.tables = {"roles"};
    b.selections.push_back({{"roles", "movie"}, CompareOp::kGe, Value(lo)});
    b.selections.push_back({{"roles", "movie"}, CompareOp::kLt, Value(hi)});
    b.projections = {{"roles", "actor"}};
    Query q;
    q.id = id;
    q.blocks.push_back(b);
    return q;
  };
  queries.push_back(make("rng_t", "T", "U"));
  queries.push_back(make("rng_cr", "Crimson", "Crystal"));
  queries.push_back(make("rng_go", "Golden", "Gos"));
  return queries;
}

std::vector<Query> PrefixScanQueries() {
  std::vector<Query> queries;
  for (const char* prefix : {"B", "Gold", "S"}) {
    SpjBlock b;
    b.tables = {"roles"};
    b.selections.push_back(
        {{"roles", "movie"}, CompareOp::kStartsWith, Value(prefix)});
    b.projections = {{"roles", "actor"}};
    Query q;
    q.id = std::string("prefix_") + prefix;
    q.blocks.push_back(b);
    queries.push_back(q);
  }
  return queries;
}

// A generator-driven mixed log with the PR 4 knobs turned up: joins of 2-3
// tables whose string selections are predominantly ordered/prefix — the
// corpus-build shape these predicates take once enabled.
const std::vector<Query>& MixedOrderLog() {
  static const std::vector<Query>* log = [] {
    QueryGenConfig cfg;
    cfg.min_tables = 2;
    cfg.max_tables = 3;
    cfg.string_order_prob = 0.6;
    cfg.string_prefix_prob = 0.3;
    QueryGenerator gen(ScanImdb().db.get(), ScanImdb().graph, cfg, 909);
    return new std::vector<Query>(gen.GenerateLog(20, "ord"));
  }();
  return *log;
}

void RunQueries(benchmark::State& state, const std::vector<Query>& queries,
                bool use_ranks) {
  const Database& db = *ScanImdb().db;
  EvalOptions opts;
  opts.capture = ProvenanceCapture::kNone;
  opts.use_string_ranks = use_ranks;
  size_t tuples = 0;
  for (auto _ : state) {
    tuples = 0;
    for (const Query& q : queries) {
      auto result = Evaluate(db, q, opts);
      if (!result.ok()) continue;
      tuples += result->tuples.size();
      benchmark::DoNotOptimize(result->tuples.data());
    }
  }
  state.SetLabel("queries=" + std::to_string(queries.size()) +
                 " tuples=" + std::to_string(tuples));
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(tuples));
}

void BM_StringRangeScanText(benchmark::State& state) {
  RunQueries(state, RangeScanQueries(), /*use_ranks=*/false);
}
BENCHMARK(BM_StringRangeScanText)->Unit(benchmark::kMillisecond);

void BM_StringRangeScanRank(benchmark::State& state) {
  RunQueries(state, RangeScanQueries(), /*use_ranks=*/true);
}
BENCHMARK(BM_StringRangeScanRank)->Unit(benchmark::kMillisecond);

void BM_SelectiveRangeText(benchmark::State& state) {
  RunQueries(state, SelectiveRangeQueries(), /*use_ranks=*/false);
}
BENCHMARK(BM_SelectiveRangeText)->Unit(benchmark::kMillisecond);

void BM_SelectiveRangeRank(benchmark::State& state) {
  RunQueries(state, SelectiveRangeQueries(), /*use_ranks=*/true);
}
BENCHMARK(BM_SelectiveRangeRank)->Unit(benchmark::kMillisecond);

void BM_StringPrefixScanText(benchmark::State& state) {
  RunQueries(state, PrefixScanQueries(), /*use_ranks=*/false);
}
BENCHMARK(BM_StringPrefixScanText)->Unit(benchmark::kMillisecond);

void BM_StringPrefixScanRank(benchmark::State& state) {
  RunQueries(state, PrefixScanQueries(), /*use_ranks=*/true);
}
BENCHMARK(BM_StringPrefixScanRank)->Unit(benchmark::kMillisecond);

void BM_MixedOrderLogText(benchmark::State& state) {
  RunQueries(state, MixedOrderLog(), /*use_ranks=*/false);
}
BENCHMARK(BM_MixedOrderLogText)->Unit(benchmark::kMillisecond);

void BM_MixedOrderLogRank(benchmark::State& state) {
  RunQueries(state, MixedOrderLog(), /*use_ranks=*/true);
}
BENCHMARK(BM_MixedOrderLogRank)->Unit(benchmark::kMillisecond);

// The one-time freeze cost: sorting the dictionary of the scan database
// (~60k distinct strings), for context against the per-query wins above.
void BM_FreezeStringOrder(benchmark::State& state) {
  ImdbConfig cfg;
  cfg.seed = 7;
  cfg.num_companies = 500;
  cfg.num_actors = 20000;
  cfg.num_movies = 40000;
  cfg.num_roles = 120000;
  GeneratedDb g = MakeImdbDatabase(cfg);
  for (auto _ : state) {
    g.db->FreezeStringOrder();
    benchmark::DoNotOptimize(g.db->string_pool().size());
  }
  state.SetLabel("pool=" + std::to_string(g.db->string_pool().size()));
}
BENCHMARK(BM_FreezeStringOrder)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace lshap

BENCHMARK_MAIN();
