// Table 3: main results — LearnShapley-base / -large vs. the Nearest Queries
// baselines (syntax / witness / rank) and the two ablations (randomly
// initialized small transformer; BERT fine-tuned without pre-training), on
// both databases, measured by NDCG@10 and p@1/3/5 on the test split.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "learnshapley/evaluate.h"
#include "learnshapley/nearest_queries.h"
#include "learnshapley/trainer.h"

using namespace lshap;
using namespace lshap::bench;

namespace {

struct ResultRow {
  std::string name;
  EvalSummary summary;
};

TrainConfig BaseTrainConfig(uint64_t seed) {
  TrainConfig cfg;
  cfg.pretrain_epochs = 3;
  cfg.pretrain_pairs_per_epoch = 512;
  cfg.finetune_epochs = 4;
  cfg.finetune_samples_per_epoch = 2048;
  cfg.batch_size = 64;
  cfg.seed = seed;
  return cfg;
}

void RunDb(const Workbench& wb, ThreadPool& pool) {
  const Corpus& corpus = wb.corpus;
  std::vector<ResultRow> rows;

  auto eval = [&](FactScorer& scorer) {
    return EvaluateScorer(corpus, corpus.test_idx, scorer, {}, pool);
  };

  // Nearest Queries baselines (n = 3, as in the paper).
  for (SimilarityMetric metric :
       {SimilarityMetric::kSyntax, SimilarityMetric::kWitness,
        SimilarityMetric::kRank}) {
    NearestQueriesScorer nn(&corpus, &wb.sims, metric, 3);
    rows.push_back({std::string("NearestQueries-") +
                        SimilarityMetricName(metric),
                    eval(nn)});
  }

  // Ablation: randomly initialized small transformer, fine-tune only.
  {
    TrainConfig cfg = BaseTrainConfig(301);
    cfg.model_size = TrainConfig::ModelSize::kSmallAblation;
    cfg.do_pretrain = false;
    cfg.finetune_epochs = 6;  // the paper trains this ablation longer
    TrainResult r = TrainLearnShapley(corpus, wb.sims, cfg, pool);
    rows.push_back({"Transformer (scratch)", eval(*r.ranker)});
  }

  // Ablation: BERT fine-tuned directly, no pre-training stage.
  {
    TrainConfig cfg = BaseTrainConfig(302);
    cfg.do_pretrain = false;
    TrainResult r = TrainLearnShapley(corpus, wb.sims, cfg, pool);
    rows.push_back({"MiniBERT (no pre-train)", eval(*r.ranker)});
  }

  // LearnShapley-base.
  {
    TrainConfig cfg = BaseTrainConfig(303);
    TrainResult r = TrainLearnShapley(corpus, wb.sims, cfg, pool);
    rows.push_back({"LearnShapley-base", eval(*r.ranker)});
  }

  // LearnShapley-large.
  {
    TrainConfig cfg = BaseTrainConfig(304);
    cfg.model_size = TrainConfig::ModelSize::kLarge;
    TrainResult r = TrainLearnShapley(corpus, wb.sims, cfg, pool);
    rows.push_back({"LearnShapley-large", eval(*r.ranker)});
  }

  std::printf("\n[%s]  (test split: %zu queries)\n", wb.label.c_str(),
              corpus.test_idx.size());
  std::printf("%-28s %9s %8s %8s %8s\n", "method", "NDCG@10", "p@1", "p@3",
              "p@5");
  for (const auto& row : rows) {
    std::printf("%-28s %9.3f %8.3f %8.3f %8.3f\n", row.name.c_str(),
                row.summary.ndcg10, row.summary.p1, row.summary.p3,
                row.summary.p5);
  }
}

}  // namespace

int main() {
  ThreadPool pool;
  PrintHeader("Table 3: LearnShapley vs. Nearest Queries baselines and "
              "ablations");
  const Workbench imdb = MakeImdbWorkbench(pool);
  RunDb(imdb, pool);
  const Workbench academic = MakeAcademicWorkbench(pool);
  RunDb(academic, pool);
  return 0;
}
