// Table 1: DBShap statistics — number of queries, results and contributing
// facts per train/dev/test split, for both databases.
#include <cstdio>

#include "bench_common.h"

using namespace lshap;
using namespace lshap::bench;

namespace {

void PrintDb(const Workbench& wb) {
  const Corpus& c = wb.corpus;
  const SplitStats train = ComputeSplitStats(c, c.train_idx);
  const SplitStats dev = ComputeSplitStats(c, c.dev_idx);
  const SplitStats test = ComputeSplitStats(c, c.test_idx);
  std::printf("\n[%s]\n", wb.label.c_str());
  std::printf("%-12s %12s %12s %12s %12s\n", "", "Train", "Dev", "Test",
              "Total");
  std::printf("%-12s %12zu %12zu %12zu %12zu\n", "# queries", train.queries,
              dev.queries, test.queries,
              train.queries + dev.queries + test.queries);
  std::printf("%-12s %12zu %12zu %12zu %12zu\n", "# results", train.results,
              dev.results, test.results,
              train.results + dev.results + test.results);
  std::printf("%-12s %12zu %12zu %12zu %12zu\n", "# facts", train.facts,
              dev.facts, test.facts, train.facts + dev.facts + test.facts);

  // The per-query / per-result shape statistics quoted in Section 4.
  size_t outputs = 0;
  size_t facts = 0;
  size_t contribs = 0;
  size_t max_lineage = 0;
  for (const auto& e : c.entries) {
    outputs += e.all_outputs.size();
    for (const auto& ct : e.contributions) {
      facts += ct.shapley.size();
      max_lineage = std::max(max_lineage, ct.shapley.size());
      ++contribs;
    }
  }
  std::printf("avg results/query %.1f | avg facts/result %.1f | "
              "max lineage %zu\n",
              static_cast<double>(outputs) /
                  static_cast<double>(c.entries.size()),
              static_cast<double>(facts) / static_cast<double>(contribs),
              max_lineage);

  // Degradation-ladder accounting of the build (see BuildStats): which rung
  // produced each sampled tuple's ground truth, and where budgets tripped.
  const BuildStats& bs = c.stats;
  std::printf("build: exact %zu | stratified %zu | monte-carlo %zu | "
              "cnf-proxy %zu | skipped %zu | wall %.2fs\n",
              bs.exact, bs.stratified, bs.monte_carlo, bs.cnf_proxy,
              bs.skipped, bs.wall_seconds);
  for (const auto& [site, count] : bs.budget_trips) {
    std::printf("  budget trips at %-24s %zu\n", site.c_str(), count);
  }
}

}  // namespace

int main(int argc, char** argv) {
  InitBenchMetrics(&argc, argv);
  ThreadPool pool;
  PrintHeader("Table 1: DBShap statistics (synthetic corpora; see DESIGN.md "
              "for scaling)");
  const Workbench imdb = MakeImdbWorkbench(pool);
  PrintDb(imdb);
  const Workbench academic = MakeAcademicWorkbench(pool);
  PrintDb(academic);
  return 0;
}
