// Design-choice ablation: the compiler's disjoint-component decomposition.
// Compiles the provenance of real corpus tuples with and without the
// optimization and reports circuit sizes and end-to-end exact-Shapley time.
// This quantifies why knowledge compilation is feasible on (hierarchical)
// SPJU provenance even though the general problem is PP-hard.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "common/timer.h"
#include "eval/evaluator.h"
#include "provenance/compiler.h"
#include "shapley/shapley.h"

using namespace lshap;
using namespace lshap::bench;

int main() {
  ThreadPool pool;
  PrintHeader("Ablation: compiler component decomposition (circuit size & "
              "Shapley time)");
  const Workbench wb = MakeImdbWorkbench(pool);

  struct Bucket {
    size_t count = 0;
    double nodes_with = 0.0;
    double nodes_without = 0.0;
    double ms_with = 0.0;
    double timeouts_without = 0.0;
  };
  // Buckets by lineage size.
  const size_t edges[] = {0, 8, 16, 32, 64, 1000};
  Bucket buckets[5];

  size_t analyzed = 0;
  for (size_t e : wb.corpus.train_idx) {
    const CorpusEntry& entry = wb.corpus.entries[e];
    auto result = Evaluate(*wb.corpus.db, entry.query);
    if (!result.ok()) continue;
    for (const auto& contrib : entry.contributions) {
      auto it = result->index.find(contrib.tuple);
      if (it == result->index.end()) continue;
      const Dnf& prov = result->ProvenanceOf(it->second);
      const size_t lin = prov.Variables().size();
      size_t b = 0;
      while (b < 4 && lin >= edges[b + 1]) ++b;
      Bucket& bucket = buckets[b];
      ++bucket.count;
      ++analyzed;

      {
        WallTimer t;
        DnfCompiler with;
        auto circuit = with.CompileUnlimited(prov);
        (void)ComputeShapleyExactUnlimited(prov);
        bucket.nodes_with += static_cast<double>(with.last_num_nodes());
        bucket.ms_with += t.ElapsedMillis();
      }
      {
        CompilerOptions off;
        off.component_decomposition = false;
        DnfCompiler without(off);
        // Guard: the naive compiler can blow up; skip monsters by clause
        // count and record them as "blown up".
        if (prov.num_clauses() > 24) {
          bucket.timeouts_without += 1.0;
        } else {
          auto circuit = without.CompileUnlimited(prov);
          bucket.nodes_without +=
              static_cast<double>(without.last_num_nodes());
        }
      }
      if (analyzed >= 400) break;
    }
    if (analyzed >= 400) break;
  }

  std::printf("\n%-14s %8s %14s %18s %14s %12s\n", "lineage bin", "tuples",
              "nodes (with)", "nodes (without)", "skipped>24cl",
              "ms (with)");
  for (size_t b = 0; b < 5; ++b) {
    const Bucket& bucket = buckets[b];
    if (bucket.count == 0) continue;
    const double n = static_cast<double>(bucket.count);
    const double without_n = n - bucket.timeouts_without;
    std::printf("[%zu,%zu)%6s %8zu %14.1f %18.1f %14.0f %12.3f\n", edges[b],
                edges[b + 1], "", bucket.count, bucket.nodes_with / n,
                without_n > 0 ? bucket.nodes_without / without_n : 0.0,
                bucket.timeouts_without, bucket.ms_with / n);
  }
  std::printf("\n('without' averages exclude tuples with >24 clauses, where "
              "the naive compiler\nis intractable; 'with' handles every "
              "tuple in milliseconds.)\n");
  return 0;
}
