// Ablation: the Nearest Queries neighbour count. The paper reports n = 3
// "led to the best results"; this sweep reproduces that tuning across all
// three similarity metrics on both databases.
#include <cstdio>

#include "bench_common.h"
#include "learnshapley/evaluate.h"
#include "learnshapley/nearest_queries.h"

using namespace lshap;
using namespace lshap::bench;

namespace {

void RunDb(const Workbench& wb, ThreadPool& pool) {
  std::printf("\n[%s]\n%-10s %-10s %9s %8s %8s %8s\n", wb.label.c_str(),
              "metric", "n", "NDCG@10", "p@1", "p@3", "p@5");
  for (SimilarityMetric metric :
       {SimilarityMetric::kSyntax, SimilarityMetric::kWitness,
        SimilarityMetric::kRank}) {
    for (size_t n : {1u, 3u, 5u, 10u}) {
      NearestQueriesScorer nn(&wb.corpus, &wb.sims, metric, n);
      const EvalSummary s =
          EvaluateScorer(wb.corpus, wb.corpus.test_idx, nn, {}, pool);
      std::printf("%-10s %-10zu %9.3f %8.3f %8.3f %8.3f\n",
                  SimilarityMetricName(metric), n, s.ndcg10, s.p1, s.p3,
                  s.p5);
    }
  }
}

}  // namespace

int main() {
  ThreadPool pool;
  PrintHeader("Ablation: Nearest Queries neighbour count (paper uses n = 3)");
  const Workbench imdb = MakeImdbWorkbench(pool);
  RunDb(imdb, pool);
  const Workbench academic = MakeAcademicWorkbench(pool);
  RunDb(academic, pool);
  return 0;
}
