// Table 5: qualitative example — a test query whose lineage contains facts
// never seen during training, with LearnShapley's predicted rank vs. the
// true rank, marking the unseen facts.
#include <cstdio>

#include "bench_common.h"
#include "learnshapley/trainer.h"
#include "shapley/shapley.h"

using namespace lshap;
using namespace lshap::bench;

int main() {
  ThreadPool pool;
  PrintHeader("Table 5: ranking a lineage containing unseen facts (Academic)");
  const Workbench wb = MakeAcademicWorkbench(pool);
  const Corpus& corpus = wb.corpus;

  TrainConfig cfg;
  cfg.pretrain_epochs = 3;
  cfg.pretrain_pairs_per_epoch = 512;
  cfg.finetune_epochs = 4;
  cfg.finetune_samples_per_epoch = 2048;
  cfg.seed = 500;
  TrainResult trained = TrainLearnShapley(corpus, wb.sims, cfg, pool);
  const auto seen = TrainSeenFacts(corpus);

  // Pick the test contribution with a small-to-medium lineage containing at
  // least one unseen fact (for a readable table). Prefer lineages of ≥ 4
  // facts, but accept any lineage with an unseen fact over one without.
  size_t best_e = corpus.test_idx[0];
  size_t best_c = 0;
  size_t best_size = static_cast<size_t>(-1);
  bool best_has_unseen = false;
  for (size_t e : corpus.test_idx) {
    const auto& contribs = corpus.entries[e].contributions;
    for (size_t c = 0; c < contribs.size(); ++c) {
      const auto& gold = contribs[c].shapley;
      size_t unseen = 0;
      for (const auto& [f, v] : gold) {
        if (seen.count(f) == 0) ++unseen;
      }
      if (unseen == 0) continue;
      const bool preferred = gold.size() >= 4;
      const bool current_preferred = best_has_unseen && best_size >= 4;
      if (!best_has_unseen || (preferred && !current_preferred) ||
          (preferred == current_preferred && gold.size() < best_size)) {
        best_size = gold.size();
        best_e = e;
        best_c = c;
        best_has_unseen = true;
      }
    }
  }
  if (!best_has_unseen) {
    std::printf("\n(no test lineage contains unseen facts at this log "
                "scale; showing the first test pair)\n");
  }

  const CorpusEntry& entry = corpus.entries[best_e];
  const TupleContribution& contrib = entry.contributions[best_c];
  std::printf("\nQuery: %s\n", entry.query.ToSql().c_str());
  std::printf("Output tuple: %s\n\n",
              OutputTupleToString(contrib.tuple).c_str());

  const ShapleyValues predicted =
      trained.ranker->Score(corpus, best_e, best_c);
  const std::vector<FactId> pred_rank = RankByScore(predicted);
  const std::vector<FactId> gold_rank = RankByScore(contrib.shapley);

  std::printf("%-10s %-10s %-8s %s\n", "pred-rank", "true-rank", "unseen",
              "fact");
  for (size_t g = 0; g < gold_rank.size(); ++g) {
    const FactId f = gold_rank[g];
    size_t pred_pos = 0;
    for (size_t p = 0; p < pred_rank.size(); ++p) {
      if (pred_rank[p] == f) pred_pos = p + 1;
    }
    std::printf("%-10zu %-10zu %-8s %s\n", pred_pos, g + 1,
                seen.count(f) == 0 ? "*NEW*" : "",
                corpus.db->FactToString(f).c_str());
  }
  std::printf("\n(*NEW* marks facts absent from every training lineage; the "
              "Nearest Queries\nbaseline necessarily scores them 0 and ranks "
              "them last in arbitrary order.)\n");
  return 0;
}
