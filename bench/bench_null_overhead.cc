// Cost of the validity-bitmap machinery on the evaluation hot path, in
// three arms over the bench_micro_eval database/log shape:
//
//   all_valid   — default generator output: no column carries a bitmap, so
//                 every scan/probe runs the pre-null flat loops. This arm
//                 against the pre-PR bench_micro_eval numbers is the
//                 acceptance gate (<2% regression; see BENCH_pr10.json).
//   bitmap_on   — the same cells plus one all-NULL row appended to every
//                 table: every column now carries a bitmap, so scans pay
//                 the valid(r) branch and joins pay the null-key checks,
//                 while the data volume is within 4 rows of arm one. This
//                 isolates the bitmap-branch cost at ~0% actual nulls.
//   nulls_5pct  — regenerated with null_prob = 0.05: nullable cells go
//                 NULL at 5%, the realistic dirty-data arm. Cell contents
//                 differ from the other arms (the null draws shift the RNG
//                 stream), so compare throughput only coarsely.
//
// Timing is min-of-3 with the arms interleaved inside each repetition, so
// clock drift hits all arms equally. The same query log (generated once,
// against the all-valid database) runs in every arm — the schemas are
// identical, so the queries are valid everywhere.
//
// Usage: bench_null_overhead [--smoke]
//
// --smoke shrinks the database and log so CI can cover the full code path
// in a couple of seconds.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/timer.h"
#include "datasets/imdb.h"
#include "eval/evaluator.h"
#include "query/generator.h"
#include "relational/database.h"

using namespace lshap;

namespace {

struct Arm {
  std::string name;
  std::unique_ptr<Database> db;
  double best_ms = 1e300;
  size_t tuples = 0;
};

// Clones `src` and appends one row of all NULLs to every table: cell-wise
// identical data, but every column crosses onto the bitmap-aware paths.
std::unique_ptr<Database> WithBitmapsForced(const Database& src) {
  auto db = std::make_unique<Database>(src.name());
  for (size_t t = 0; t < src.num_tables(); ++t) {
    const Table& table = src.table(t);
    LSHAP_CHECK(db->AddTable(table.schema()).ok());
    TableAppender app = db->AppenderFor(table.schema().table_name());
    for (size_t r = 0; r < table.num_rows(); ++r) {
      app.Begin();
      for (size_t c = 0; c < table.num_columns(); ++c) {
        const Value v = table.GetValue(r, c);
        if (v.is_int()) {
          app.Int(v.AsInt());
        } else if (v.is_string()) {
          app.Str(v.AsString());
        } else {
          app.Real(v.AsDouble());
        }
      }
      app.Commit();
    }
    app.Begin();
    for (size_t c = 0; c < table.num_columns(); ++c) app.Null();
    app.Commit();
  }
  db->FreezeStringOrder();
  for (size_t t = 0; t < db->num_tables(); ++t) {
    for (size_t c = 0; c < db->table(t).num_columns(); ++c) {
      LSHAP_CHECK(db->table(t).column(c).has_nulls());
    }
  }
  return db;
}

size_t RunLog(const Database& db, const std::vector<Query>& log) {
  size_t tuples = 0;
  for (const Query& q : log) {
    auto result = Evaluate(db, q);
    LSHAP_CHECK(result.ok());
    tuples += result->tuples.size();
  }
  return tuples;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  ImdbConfig cfg;
  cfg.seed = 7;
  cfg.num_companies = smoke ? 20 : 120;
  cfg.num_actors = smoke ? 120 : 1200;
  cfg.num_movies = smoke ? 220 : 2200;
  cfg.num_roles = smoke ? 700 : 7000;
  GeneratedDb base = MakeImdbDatabase(cfg);

  ImdbConfig dirty_cfg = cfg;
  dirty_cfg.null_prob = 0.05;

  std::vector<Arm> arms;
  arms.push_back({"all_valid", nullptr});
  arms.push_back({"bitmap_on", WithBitmapsForced(*base.db)});
  arms.push_back({"nulls_5pct", std::move(MakeImdbDatabase(dirty_cfg).db)});

  QueryGenConfig gen_cfg;
  gen_cfg.min_tables = 2;
  gen_cfg.max_tables = 4;
  QueryGenerator gen(base.db.get(), base.graph, gen_cfg, 4242);
  const std::vector<Query> log = gen.GenerateLog(smoke ? 5 : 25, "nullbench");

  const int reps = smoke ? 1 : 3;
  for (int rep = 0; rep < reps; ++rep) {
    for (Arm& arm : arms) {
      const Database& db = arm.db ? *arm.db : *base.db;
      WallTimer timer;
      const size_t tuples = RunLog(db, log);
      const double ms = timer.ElapsedMillis();
      if (ms < arm.best_ms) arm.best_ms = ms;
      if (rep == 0) {
        arm.tuples = tuples;
      } else {
        LSHAP_CHECK_EQ(arm.tuples, tuples);  // determinism across reps
      }
    }
  }

  // The forced-bitmap arm evaluates the same cells as all_valid plus one
  // null row per table; nulls never join and never pass a selection, so
  // only project-everything blocks can add tuples. Large divergence would
  // mean the arms are not comparable.
  std::printf("bench_null_overhead%s  queries=%zu  reps=%d (min)\n",
              smoke ? " [smoke]" : "", log.size(), reps);
  const double base_ms = arms[0].best_ms;
  for (const Arm& arm : arms) {
    std::printf("  %-11s %9.2f ms  tuples=%-7zu  vs all_valid %+6.1f%%\n",
                arm.name.c_str(), arm.best_ms, arm.tuples,
                (arm.best_ms / base_ms - 1.0) * 100.0);
  }
  return 0;
}
