// Figure 12: partial NDCG of LearnShapley's rankings on the Academic test
// set, restricted separately to facts seen during training and to unseen
// facts, printed as histograms plus means.
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "learnshapley/evaluate.h"
#include "learnshapley/trainer.h"

using namespace lshap;
using namespace lshap::bench;

namespace {

void PrintHistogram(const char* title, const std::vector<double>& values) {
  std::printf("\n%s  (%zu pairs)\n", title, values.size());
  const int kBins = 10;
  std::vector<size_t> bins(kBins, 0);
  double mean = 0.0;
  for (double v : values) {
    int b = static_cast<int>(v * kBins);
    if (b >= kBins) b = kBins - 1;
    if (b < 0) b = 0;
    ++bins[static_cast<size_t>(b)];
    mean += v;
  }
  if (!values.empty()) mean /= static_cast<double>(values.size());
  for (int b = 0; b < kBins; ++b) {
    std::string bar(bins[static_cast<size_t>(b)], '#');
    std::printf("[%.1f,%.1f) %4zu |%s\n", b / 10.0, (b + 1) / 10.0,
                bins[static_cast<size_t>(b)], bar.c_str());
  }
  std::printf("mean partial NDCG: %.3f\n", mean);
}

}  // namespace

int main() {
  ThreadPool pool;
  PrintHeader("Figure 12: partial NDCG on seen vs. unseen facts (Academic)");
  const Workbench wb = MakeAcademicWorkbench(pool);
  const Corpus& corpus = wb.corpus;

  TrainConfig cfg;
  cfg.pretrain_epochs = 3;
  cfg.pretrain_pairs_per_epoch = 768;
  cfg.finetune_epochs = 5;
  cfg.finetune_samples_per_epoch = 3072;
  cfg.seed = 1000;
  TrainResult trained = TrainLearnShapley(corpus, wb.sims, cfg, pool);

  const auto seen = TrainSeenFacts(corpus);
  size_t total = 0;
  size_t unseen_facts = 0;
  for (size_t e : corpus.test_idx) {
    for (const auto& c : corpus.entries[e].contributions) {
      for (const auto& [f, v] : c.shapley) {
        ++total;
        if (seen.count(f) == 0) ++unseen_facts;
      }
    }
  }
  std::printf("\n%.1f%% of test lineage facts were never seen in training "
              "(%zu / %zu)\n",
              100.0 * static_cast<double>(unseen_facts) /
                  static_cast<double>(total),
              unseen_facts, total);

  const EvalSummary s = EvaluateScorer(corpus, corpus.test_idx,
                                       *trained.ranker, seen, pool);
  std::vector<double> seen_scores, unseen_scores;
  for (const auto& pt : s.points) {
    if (pt.has_seen) seen_scores.push_back(pt.seen_ndcg10);
    if (pt.has_unseen) unseen_scores.push_back(pt.unseen_ndcg10);
  }
  PrintHistogram("(a) partial NDCG over facts SEEN during training",
                 seen_scores);
  PrintHistogram("(b) partial NDCG over facts UNSEEN during training",
                 unseen_scores);
  std::printf("\n(Partial NDCGs are computed over fact subsets and are not "
              "comparable to the\nfull-lineage NDCG of Figure 9.)\n");
  return 0;
}
