// Corpus-build wall time under resource governance: the same IMDB corpus
// built (a) unbounded (historical behavior), (b) with a sane per-tuple
// deadline + node budget, and (c) with a deliberately starved node budget
// that pushes everything onto the Monte-Carlo rung. Prints wall time and the
// BuildStats rung/trip breakdown for each — feeds the BENCH_pr2.json
// corpus-build comparison.
#include <cstdio>

#include "bench_common.h"

using namespace lshap;
using namespace lshap::bench;

namespace {

CorpusConfig BaseConfig() {
  CorpusConfig cfg;
  cfg.seed = 101;
  cfg.num_base_queries = 34;
  cfg.max_outputs_per_query = 24;
  cfg.query_gen.min_tables = 2;
  cfg.query_gen.max_tables = 4;
  cfg.metrics = BenchMetrics();
  return cfg;
}

void Run(const char* label, const CorpusConfig& cfg, const GeneratedDb& data,
         ThreadPool& pool) {
  const Corpus c = BuildCorpus(*data.db, data.graph, cfg, pool);
  const BuildStats& s = c.stats;
  std::printf("\n[%s]\n", label);
  std::printf("wall %.3fs | entries %zu | attempted %zu\n", s.wall_seconds,
              c.entries.size(), s.attempted());
  std::printf("rungs: exact %zu | monte-carlo %zu | cnf-proxy %zu | "
              "skipped %zu\n",
              s.exact, s.monte_carlo, s.cnf_proxy, s.skipped);
  for (const auto& [site, count] : s.budget_trips) {
    std::printf("  budget trips at %-24s %zu\n", site.c_str(), count);
  }
}

}  // namespace

int main(int argc, char** argv) {
  InitBenchMetrics(&argc, argv);
  ThreadPool pool;
  PrintHeader("Corpus build under execution budgets (IMDB scale, seed 101)");
  const GeneratedDb data = MakeImdbDatabase({});

  Run("unbounded (historical)", BaseConfig(), data, pool);

  CorpusConfig sane = BaseConfig();
  sane.tuple_deadline_seconds = 0.5;
  sane.max_circuit_nodes = 1u << 20;
  Run("sane budget (0.5s/tuple, 1M nodes)", sane, data, pool);

  CorpusConfig starved = BaseConfig();
  starved.max_circuit_nodes = 8;
  starved.mc_fallback_samples = 2000;
  Run("starved (8-node circuits -> MC rung)", starved, data, pool);

  return 0;
}
