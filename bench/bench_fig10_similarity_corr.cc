// Figure 10: NDCG@10 of LearnShapley on (query, tuple) pairs vs. the
// similarity of the query to its nearest training query (top row) and to
// the mean of its 5 nearest (bottom row), under each similarity metric.
// Printed as binned series and Pearson correlations.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "learnshapley/evaluate.h"
#include "learnshapley/trainer.h"

using namespace lshap;
using namespace lshap::bench;

namespace {

double Pearson(const std::vector<std::pair<double, double>>& xy) {
  if (xy.size() < 2) return 0.0;
  double mx = 0.0, my = 0.0;
  for (const auto& [x, y] : xy) {
    mx += x;
    my += y;
  }
  mx /= static_cast<double>(xy.size());
  my /= static_cast<double>(xy.size());
  double cov = 0.0, vx = 0.0, vy = 0.0;
  for (const auto& [x, y] : xy) {
    cov += (x - mx) * (y - my);
    vx += (x - mx) * (x - mx);
    vy += (y - my) * (y - my);
  }
  return vx > 0 && vy > 0 ? cov / std::sqrt(vx * vy) : 0.0;
}

void PrintSeries(const char* title,
                 const std::vector<std::pair<double, double>>& xy) {
  // 5 similarity bins.
  const double edges[] = {0.0, 0.1, 0.2, 0.4, 0.7, 1.01};
  std::printf("%s\n%-16s %8s %10s\n", title, "sim-bin", "pairs", "NDCG@10");
  for (int b = 0; b < 5; ++b) {
    double sum = 0.0;
    size_t n = 0;
    for (const auto& [x, y] : xy) {
      if (x >= edges[b] && x < edges[b + 1]) {
        sum += y;
        ++n;
      }
    }
    if (n == 0) continue;
    std::printf("[%.2f,%.2f)%6s %8zu %10.3f\n", edges[b], edges[b + 1], "",
                n, sum / static_cast<double>(n));
  }
  std::printf("Pearson correlation: %.3f\n\n", Pearson(xy));
}

}  // namespace

int main() {
  ThreadPool pool;
  PrintHeader("Figure 10: NDCG@10 vs. nearest-query similarity (Academic)");
  const Workbench wb = MakeAcademicWorkbench(pool);
  const Corpus& corpus = wb.corpus;

  TrainConfig cfg;
  cfg.pretrain_epochs = 3;
  cfg.pretrain_pairs_per_epoch = 768;
  cfg.finetune_epochs = 8;
  cfg.finetune_samples_per_epoch = 3072;
  cfg.seed = 800;
  TrainResult trained = TrainLearnShapley(corpus, wb.sims, cfg, pool);
  const EvalSummary s = EvaluateScorer(corpus, corpus.test_idx,
                                       *trained.ranker, {}, pool);

  struct Metric {
    const char* name;
    const std::vector<std::vector<double>>* matrix;
  };
  const Metric metrics[] = {{"syntax-based", &wb.sims.syntax},
                            {"witness-based", &wb.sims.witness},
                            {"rank-based", &wb.sims.rank}};

  for (const Metric& metric : metrics) {
    // Per test entry: top-1 and mean-of-top-5 similarity to train queries.
    std::vector<std::pair<double, double>> xy_top1, xy_top5;
    for (const auto& pt : s.points) {
      std::vector<double> sims;
      for (size_t t : corpus.train_idx) {
        if (t != pt.entry_idx) {
          sims.push_back((*metric.matrix)[pt.entry_idx][t]);
        }
      }
      std::sort(sims.rbegin(), sims.rend());
      if (sims.empty()) continue;
      xy_top1.emplace_back(sims[0], pt.ndcg10);
      double top5 = 0.0;
      const size_t n = std::min<size_t>(5, sims.size());
      for (size_t i = 0; i < n; ++i) top5 += sims[i];
      xy_top5.emplace_back(top5 / static_cast<double>(n), pt.ndcg10);
    }
    std::printf("\n--- %s ---\n", metric.name);
    PrintSeries("(top) similarity of single nearest train query", xy_top1);
    PrintSeries("(bottom) mean similarity of 5 nearest train queries",
                xy_top5);
  }
  return 0;
}
