// Extension: Banzhaf vs. Shapley fact attribution. The Banzhaf index is the
// other standard power index (uniform coalition weighting); it is computed
// on the same circuits and usually induces a near-identical ranking. This
// bench quantifies ranking agreement (NDCG of one against the other, top-1
// agreement) and relative compute cost over corpus provenance.
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "common/timer.h"
#include "eval/evaluator.h"
#include "metrics/ranking_metrics.h"
#include "shapley/shapley.h"

using namespace lshap;
using namespace lshap::bench;

int main() {
  ThreadPool pool;
  PrintHeader("Extension: Banzhaf vs. Shapley attribution (IMDB)");
  const Workbench wb = MakeImdbWorkbench(pool);

  std::vector<double> cross_ndcg;
  size_t top1_agree = 0;
  size_t total = 0;
  double shapley_ms = 0.0;
  double banzhaf_ms = 0.0;

  for (size_t e : wb.corpus.train_idx) {
    const CorpusEntry& entry = wb.corpus.entries[e];
    auto result = Evaluate(*wb.corpus.db, entry.query);
    if (!result.ok()) continue;
    for (const auto& contrib : entry.contributions) {
      auto it = result->index.find(contrib.tuple);
      if (it == result->index.end()) continue;
      const Dnf& prov = result->ProvenanceOf(it->second);
      if (prov.Variables().size() < 3) continue;

      WallTimer t1;
      const ShapleyValues shapley = ComputeShapleyExactUnlimited(prov);
      shapley_ms += t1.ElapsedMillis();
      WallTimer t2;
      const ShapleyValues banzhaf = ComputeBanzhafExactUnlimited(prov);
      banzhaf_ms += t2.ElapsedMillis();

      const auto rank_b = RankByScore(banzhaf);
      cross_ndcg.push_back(NdcgAtK(rank_b, shapley, 10));
      if (rank_b[0] == RankByScore(shapley)[0]) ++top1_agree;
      ++total;
      if (total >= 300) break;
    }
    if (total >= 300) break;
  }

  std::printf("\n(q, t) pairs compared: %zu\n", total);
  std::printf("NDCG@10 of Banzhaf ranking against Shapley gold: %.4f\n",
              Mean(cross_ndcg));
  std::printf("top-1 fact agreement: %.1f%%\n",
              100.0 * static_cast<double>(top1_agree) /
                  static_cast<double>(total));
  std::printf("mean compute time: shapley %.3f ms | banzhaf %.3f ms per "
              "tuple\n",
              shapley_ms / static_cast<double>(total),
              banzhaf_ms / static_cast<double>(total));
  return 0;
}
