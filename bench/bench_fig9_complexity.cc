// Figure 9: LearnShapley-base NDCG@10 on Academic test (query, tuple) pairs
// as a function of (a) lineage size and (b) number of joined tables.
// Printed as binned series plus the linear trendline slope.
#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "bench_common.h"
#include "learnshapley/evaluate.h"
#include "learnshapley/trainer.h"

using namespace lshap;
using namespace lshap::bench;

namespace {

double TrendSlope(const std::vector<std::pair<double, double>>& xy) {
  if (xy.size() < 2) return 0.0;
  double mx = 0.0, my = 0.0;
  for (const auto& [x, y] : xy) {
    mx += x;
    my += y;
  }
  mx /= static_cast<double>(xy.size());
  my /= static_cast<double>(xy.size());
  double cov = 0.0, var = 0.0;
  for (const auto& [x, y] : xy) {
    cov += (x - mx) * (y - my);
    var += (x - mx) * (x - mx);
  }
  return var > 0 ? cov / var : 0.0;
}

void PrintBinned(const char* title, const std::map<size_t, std::vector<double>>& bins) {
  std::printf("\n%s\n%-18s %8s %10s\n", title, "bin", "pairs", "NDCG@10");
  for (const auto& [bin, vals] : bins) {
    double mean = 0.0;
    for (double v : vals) mean += v;
    mean /= static_cast<double>(vals.size());
    std::string bar(static_cast<size_t>(mean * 40), '#');
    std::printf("%-18zu %8zu %10.3f  |%s\n", bin, vals.size(), mean,
                bar.c_str());
  }
}

}  // namespace

int main() {
  ThreadPool pool;
  PrintHeader("Figure 9: NDCG@10 vs. lineage size (a) and #joined tables (b) "
              "— Academic");
  const Workbench wb = MakeAcademicWorkbench(pool);

  TrainConfig cfg;
  cfg.pretrain_epochs = 3;
  cfg.pretrain_pairs_per_epoch = 768;
  cfg.finetune_epochs = 5;
  cfg.finetune_samples_per_epoch = 3072;
  cfg.seed = 700;
  TrainResult trained = TrainLearnShapley(wb.corpus, wb.sims, cfg, pool);
  const EvalSummary s = EvaluateScorer(wb.corpus, wb.corpus.test_idx,
                                       *trained.ranker, {}, pool);

  // (a) vs lineage size, binned by powers-of-two-ish sizes.
  std::map<size_t, std::vector<double>> by_lineage;
  std::vector<std::pair<double, double>> xy_lineage;
  for (const auto& pt : s.points) {
    size_t bin = 4;
    while (bin < pt.lineage_size) bin *= 2;
    by_lineage[bin].push_back(pt.ndcg10);
    xy_lineage.emplace_back(static_cast<double>(pt.lineage_size), pt.ndcg10);
  }
  PrintBinned("(a) by lineage size (bin = upper bound)", by_lineage);
  std::printf("linear trendline slope: %.5f NDCG per lineage fact\n",
              TrendSlope(xy_lineage));

  // (b) vs number of joined tables.
  std::map<size_t, std::vector<double>> by_tables;
  std::vector<std::pair<double, double>> xy_tables;
  for (const auto& pt : s.points) {
    by_tables[pt.num_tables].push_back(pt.ndcg10);
    xy_tables.emplace_back(static_cast<double>(pt.num_tables), pt.ndcg10);
  }
  PrintBinned("(b) by #tables joined", by_tables);
  std::printf("linear trendline slope: %.5f NDCG per joined table\n",
              TrendSlope(xy_tables));
  return 0;
}
