// Micro-benchmarks of the Shapley engines (google-benchmark): exact circuit
// computation vs. brute force vs. CNF proxy vs. Monte Carlo on synthetic
// provenance of varying lineage size. Supports the Table 6 claim that exact
// computation dominates inference-time alternatives as provenance grows.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "common/rng.h"
#include "provenance/bool_expr.h"
#include "provenance/compiler.h"
#include "shapley/shapley.h"

namespace lshap {
namespace {

// Random monotone DNF with `num_vars` variables across `num_clauses`
// clauses of length ~`clause_len` (deterministic per shape).
Dnf MakeProvenance(size_t num_vars, size_t num_clauses, size_t clause_len) {
  Rng rng(num_vars * 131 + num_clauses * 17 + clause_len);
  std::vector<Clause> clauses;
  for (size_t c = 0; c < num_clauses; ++c) {
    Clause clause;
    for (size_t i = 0; i < clause_len; ++i) {
      clause.push_back(static_cast<FactId>(rng.NextBounded(num_vars)));
    }
    clauses.push_back(clause);
  }
  return Dnf(std::move(clauses));
}

void BM_ShapleyExact(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Dnf d = MakeProvenance(n, n / 2 + 1, 4);
  // Span per benchmark, not per iteration: span enter/exit costs a mutex
  // and two clock reads, which would be measurable noise on the µs-scale
  // iterations here.
  ScopedSpan span(bench::BenchMetrics(), "bench.shapley.exact");
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeShapleyExactUnlimited(d));
  }
  state.SetLabel("lineage=" + std::to_string(d.Variables().size()));
}
BENCHMARK(BM_ShapleyExact)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_ShapleyBrute(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Dnf d = MakeProvenance(n, n / 2 + 1, 4);
  ScopedSpan span(bench::BenchMetrics(), "bench.shapley.brute");
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeShapleyBrute(d).value());
  }
}
BENCHMARK(BM_ShapleyBrute)->Arg(8)->Arg(12)->Arg(16)->Arg(20);

void BM_CnfProxy(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Dnf d = MakeProvenance(n, n / 2 + 1, 4);
  ScopedSpan span(bench::BenchMetrics(), "bench.shapley.cnf_proxy");
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeCnfProxyUnlimited(d));
  }
}
BENCHMARK(BM_CnfProxy)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_MonteCarlo1k(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Dnf d = MakeProvenance(n, n / 2 + 1, 4);
  Rng rng(7);
  ScopedSpan span(bench::BenchMetrics(), "bench.shapley.monte_carlo");
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeShapleyMonteCarloUnlimited(d, 1000, rng));
  }
}
BENCHMARK(BM_MonteCarlo1k)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_CircuitCompile(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Dnf d = MakeProvenance(n, n / 2 + 1, 4);
  ScopedSpan span(bench::BenchMetrics(), "bench.shapley.compile");
  for (auto _ : state) {
    DnfCompiler compiler;
    benchmark::DoNotOptimize(compiler.CompileUnlimited(d));
  }
}
BENCHMARK(BM_CircuitCompile)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

}  // namespace
}  // namespace lshap

// Hand-expanded BENCHMARK_MAIN(); see bench_micro_eval.cc.
int main(int argc, char** argv) {
  lshap::bench::InitBenchMetrics(&argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
