// Estimator quality at matched budgets: exact (oracle) vs plain Monte-Carlo
// vs relation-stratified MC (Neyman pilot, and pilot-off proportional) on
// real corpus provenance. For each per-fact sample budget B the three
// estimators see the same lineages and the same per-fact budget; quality is
// measured against the exact oracle as pairwise rank-inversion rate, top-5
// agreement and MSE, averaged over several estimator seeds. Timing is
// min-of-3 with the estimators interleaved inside each repetition, so clock
// drift hits all arms equally. A second section replays the corpus builder's
// degradation ladder under a tight per-tuple deadline with the stratified
// rung off vs on — the acceptance comparison behind BENCH_pr9.json.
//
// Usage: bench_shapley_estimators [--smoke] [--metrics-json=PATH]
//
// --smoke shrinks everything (few lineages, one budget, two seeds, no
// deadline section) so CI can run the full code path in seconds.
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/timer.h"
#include "eval/evaluator.h"
#include "shapley/shapley.h"

using namespace lshap;
using namespace lshap::bench;

namespace {

// One benchmark case: a tuple's provenance plus the relation stratum of
// every lineage fact, and the exact Shapley oracle.
struct Case {
  Dnf prov;
  std::vector<uint32_t> strata;
  ShapleyValues exact;
};

// Harvest corpus lineages worth estimating: mid-size (the exact rung is the
// oracle, so n stays brute-force checkable) and spanning at least two
// relations (single-stratum lineages reduce every arm to plain sampling).
std::vector<Case> CollectCases(const Workbench& wb, size_t max_cases) {
  std::vector<Case> cases;
  for (size_t e : wb.corpus.train_idx) {
    const CorpusEntry& entry = wb.corpus.entries[e];
    auto result = Evaluate(*wb.corpus.db, entry.query);
    if (!result.ok()) continue;
    for (const auto& contrib : entry.contributions) {
      auto it = result->index.find(contrib.tuple);
      if (it == result->index.end()) continue;
      const Dnf& prov = result->ProvenanceOf(it->second);
      const std::vector<FactId> lineage = prov.Variables();
      if (lineage.size() < 6 || lineage.size() > 25) continue;
      std::vector<uint32_t> strata(lineage.size());
      for (size_t i = 0; i < lineage.size(); ++i) {
        strata[i] = wb.corpus.db->FactTableIndex(lineage[i]);
      }
      if (std::set<uint32_t>(strata.begin(), strata.end()).size() < 2) {
        continue;
      }
      cases.push_back({prov, std::move(strata),
                       ComputeShapleyExactUnlimited(prov)});
      if (cases.size() >= max_cases) return cases;
    }
  }
  return cases;
}

// Fraction of fact pairs with distinct exact values that the estimate
// orders the wrong way (ties in the estimate count as half an inversion).
double InversionRate(const ShapleyValues& est, const ShapleyValues& exact) {
  std::vector<FactId> facts;
  for (const auto& [f, v] : exact) facts.push_back(f);
  double inversions = 0.0;
  size_t pairs = 0;
  for (size_t i = 0; i < facts.size(); ++i) {
    for (size_t j = i + 1; j < facts.size(); ++j) {
      const double de = exact.at(facts[i]) - exact.at(facts[j]);
      if (de == 0.0) continue;
      ++pairs;
      const double dm = est.at(facts[i]) - est.at(facts[j]);
      if (dm == 0.0) {
        inversions += 0.5;
      } else if ((de > 0.0) != (dm > 0.0)) {
        inversions += 1.0;
      }
    }
  }
  return pairs == 0 ? 0.0 : inversions / static_cast<double>(pairs);
}

double TopKAgreement(const ShapleyValues& est, const ShapleyValues& exact,
                     size_t k) {
  const auto re = RankByScore(est);
  const auto rx = RankByScore(exact);
  const size_t kk = std::min(k, rx.size());
  const std::set<FactId> top_exact(rx.begin(), rx.begin() + kk);
  size_t overlap = 0;
  for (size_t i = 0; i < kk; ++i) overlap += top_exact.count(re[i]);
  return static_cast<double>(overlap) / static_cast<double>(kk);
}

double Mse(const ShapleyValues& est, const ShapleyValues& exact) {
  double sum = 0.0;
  for (const auto& [f, v] : exact) {
    const double d = est.at(f) - v;
    sum += d * d;
  }
  return sum / static_cast<double>(exact.size());
}

struct Quality {
  double inv_rate = 0.0;
  double top5 = 0.0;
  double mse = 0.0;
  void Add(const ShapleyValues& est, const ShapleyValues& exact) {
    inv_rate += InversionRate(est, exact);
    top5 += TopKAgreement(est, exact, 5);
    mse += Mse(est, exact);
  }
  void Scale(double inv_n) {
    inv_rate *= inv_n;
    top5 *= inv_n;
    mse *= inv_n;
  }
};

// The three arms under test. Budget semantics: `samples` is the per-fact
// budget B for every arm — a plain-MC run with B permutations gives each
// fact exactly B marginal evaluations, and a stratified run targets n*B
// marginal samples spread over the facts. The Neyman arm additionally
// spends a B/4-permutation pilot, amortized across all n facts (per-fact
// overhead B/(4n), well under the budget-match noise floor).
using EstimatorFn = ShapleyValues (*)(const Case&, size_t samples, Rng& rng);

ShapleyValues RunPlainMc(const Case& c, size_t samples, Rng& rng) {
  return ComputeShapleyMonteCarloUnlimited(c.prov, samples, rng);
}

ShapleyValues RunStratProportional(const Case& c, size_t samples, Rng& rng) {
  StratifiedMcOptions opt;
  opt.pilot_permutations = 0;
  return ComputeShapleyStratifiedUnlimited(c.prov, c.strata, samples, rng,
                                           opt);
}

ShapleyValues RunStratNeyman(const Case& c, size_t samples, Rng& rng) {
  StratifiedMcOptions opt;
  opt.pilot_permutations = samples / 4;
  return ComputeShapleyStratifiedUnlimited(c.prov, c.strata, samples, rng,
                                           opt);
}

struct Arm {
  const char* name;
  EstimatorFn fn;
};

constexpr Arm kArms[] = {
    {"plain-mc", RunPlainMc},
    {"strat-prop", RunStratProportional},
    {"strat-neyman", RunStratNeyman},
};

void QualityTable(const std::vector<Case>& cases,
                  const std::vector<size_t>& budgets, size_t num_seeds) {
  for (size_t budget : budgets) {
    std::printf("\n[per-fact budget B = %zu, %zu seeds x %zu lineages]\n",
                budget, num_seeds, cases.size());
    std::printf("%-14s %10s %10s %12s\n", "estimator", "inv-rate", "top-5",
                "mse");
    for (const Arm& arm : kArms) {
      Quality q;
      for (size_t seed = 0; seed < num_seeds; ++seed) {
        for (const Case& c : cases) {
          Rng rng(0x515 + seed * 7919);
          q.Add(arm.fn(c, budget, rng), c.exact);
        }
      }
      q.Scale(1.0 / static_cast<double>(num_seeds * cases.size()));
      std::printf("%-14s %10.4f %10.4f %12.3e\n", arm.name, q.inv_rate,
                  q.top5, q.mse);
    }
  }
}

void TimingTable(const std::vector<Case>& cases, size_t budget,
                 size_t num_seeds) {
  std::printf("\n[wall time, B = %zu, min of 3 interleaved reps]\n", budget);
  std::map<std::string, double> best;
  for (int rep = 0; rep < 3; ++rep) {
    for (const Arm& arm : kArms) {
      WallTimer t;
      for (size_t seed = 0; seed < num_seeds; ++seed) {
        for (const Case& c : cases) {
          Rng rng(0x515 + seed * 7919);
          const ShapleyValues v = arm.fn(c, budget, rng);
          (void)v;
        }
      }
      const double ms = t.ElapsedMillis();
      auto it = best.find(arm.name);
      if (it == best.end() || ms < it->second) best[arm.name] = ms;
    }
  }
  for (const Arm& arm : kArms) {
    std::printf("%-14s %8.2f ms (%zu estimates)\n", arm.name, best[arm.name],
                num_seeds * cases.size());
  }
}

// The acceptance comparison: same database, same tight per-tuple deadline,
// same starved node budget (so the exact rung drops most tuples) — rung off
// vs on. "Above proxy" counts tuples whose ground truth came from a real
// Shapley estimator (exact, stratified or plain MC) rather than the CNF
// heuristic or a skip.
void DeadlineLadderComparison(ThreadPool& pool) {
  PrintHeader("Corpus build under a tight tuple deadline: stratified rung "
              "off vs on");
  const GeneratedDb data = MakeImdbDatabase({});
  CorpusConfig base;
  base.seed = 101;
  base.num_base_queries = 34;
  base.max_outputs_per_query = 24;
  base.query_gen.min_tables = 2;
  base.query_gen.max_tables = 4;
  base.max_circuit_nodes = 8;         // starve the exact rung
  base.tuple_deadline_seconds = 2e-3; // tight enough to trip large-B MC
  base.mc_fallback_samples = 20000;
  base.metrics = BenchMetrics();

  CorpusConfig with_rung = base;
  // The variance reduction is the budget: the stratified rung asks for far
  // fewer per-fact samples than the MC rung's permutations, so it fits the
  // deadline where plain MC trips.
  with_rung.stratified_fallback_samples = 64;

  for (const auto& [label, cfg] :
       std::vector<std::pair<const char*, CorpusConfig>>{
           {"rung off (historical)", base},
           {"rung on (strat 64/fact)", with_rung}}) {
    const Corpus c = BuildCorpus(*data.db, data.graph, cfg, pool);
    const BuildStats& s = c.stats;
    const size_t above_proxy = s.exact + s.stratified + s.monte_carlo;
    std::printf("\n[%s]\n", label);
    std::printf("wall %.3fs | attempted %zu | above proxy %zu (%.1f%%)\n",
                s.wall_seconds, s.attempted(), above_proxy,
                100.0 * static_cast<double>(above_proxy) /
                    static_cast<double>(s.attempted()));
    std::printf("rungs: exact %zu | stratified %zu | monte-carlo %zu | "
                "cnf-proxy %zu | skipped %zu\n",
                s.exact, s.stratified, s.monte_carlo, s.cnf_proxy, s.skipped);
    for (const auto& [site, count] : s.budget_trips) {
      std::printf("  budget trips at %-24s %zu\n", site.c_str(), count);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  InitBenchMetrics(&argc, argv);
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  ThreadPool pool;
  PrintHeader("Shapley estimator quality at matched budgets (IMDB corpus "
              "provenance)");
  const Workbench wb = MakeImdbWorkbench(pool);
  const std::vector<Case> cases = CollectCases(wb, smoke ? 8 : 60);
  std::printf("\nlineages collected: %zu (6 <= n <= 25, >= 2 relations)\n",
              cases.size());
  if (cases.empty()) {
    std::printf("no eligible lineages — nothing to compare\n");
    return 1;
  }

  const std::vector<size_t> budgets =
      smoke ? std::vector<size_t>{32} : std::vector<size_t>{32, 128, 512};
  const size_t num_seeds = smoke ? 2 : 5;
  QualityTable(cases, budgets, num_seeds);
  TimingTable(cases, budgets.back(), num_seeds);

  if (!smoke) DeadlineLadderComparison(pool);
  return 0;
}
