// Figure 7: heatmaps of the pairwise query-similarity matrices. Rendered as
// ASCII shade grids (space < . < : < + < * < #), one per metric per DB,
// demonstrating that the three metrics activate different regions.
#include <cmath>
#include <cstdio>

#include "bench_common.h"

using namespace lshap;
using namespace lshap::bench;

namespace {

char Shade(double v) {
  if (v < 0.05) return ' ';
  if (v < 0.20) return '.';
  if (v < 0.40) return ':';
  if (v < 0.60) return '+';
  if (v < 0.80) return '*';
  return '#';
}

void PrintMatrix(const char* name,
                 const std::vector<std::vector<double>>& m) {
  std::printf("\n%s (%zux%zu, rows/cols = queries in corpus order)\n", name,
              m.size(), m.size());
  for (const auto& row : m) {
    std::fputs("  |", stdout);
    for (double v : row) std::fputc(Shade(v), stdout);
    std::fputs("|\n", stdout);
  }
}

void PrintDb(const Workbench& wb) {
  std::printf("\n[%s]  legend: ' '<0.05 '.'<0.2 ':'<0.4 '+'<0.6 '*'<0.8 "
              "'#'>=0.8\n",
              wb.label.c_str());
  PrintMatrix("syntax-based", wb.sims.syntax);
  PrintMatrix("witness-based", wb.sims.witness);
  PrintMatrix("rank-based", wb.sims.rank);

  // Orthogonality summary: correlation between the metric matrices.
  auto flatten = [](const std::vector<std::vector<double>>& m) {
    std::vector<double> out;
    for (size_t i = 0; i < m.size(); ++i) {
      for (size_t j = i + 1; j < m.size(); ++j) out.push_back(m[i][j]);
    }
    return out;
  };
  auto pearson = [](const std::vector<double>& a,
                    const std::vector<double>& b) {
    double ma = 0.0, mb = 0.0;
    for (size_t i = 0; i < a.size(); ++i) {
      ma += a[i];
      mb += b[i];
    }
    ma /= static_cast<double>(a.size());
    mb /= static_cast<double>(a.size());
    double cov = 0.0, va = 0.0, vb = 0.0;
    for (size_t i = 0; i < a.size(); ++i) {
      cov += (a[i] - ma) * (b[i] - mb);
      va += (a[i] - ma) * (a[i] - ma);
      vb += (b[i] - mb) * (b[i] - mb);
    }
    return va > 0 && vb > 0 ? cov / std::sqrt(va * vb) : 0.0;
  };
  const auto s = flatten(wb.sims.syntax);
  const auto w = flatten(wb.sims.witness);
  const auto r = flatten(wb.sims.rank);
  std::printf("\npairwise Pearson correlations: syntax~witness %.3f | "
              "syntax~rank %.3f | witness~rank %.3f\n",
              pearson(s, w), pearson(s, r), pearson(w, r));
}

}  // namespace

int main() {
  ThreadPool pool;
  PrintHeader("Figure 7: query-similarity heatmaps (ASCII rendering)");
  const Workbench imdb = MakeImdbWorkbench(pool);
  PrintDb(imdb);
  const Workbench academic = MakeAcademicWorkbench(pool);
  PrintDb(academic);
  return 0;
}
