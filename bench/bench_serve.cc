// Closed-loop load driver for the resilient ranking service (DESIGN.md §11):
// N client threads issue Zipf-distributed RankTuple requests against a
// RankingService over the IMDB database, through three phases —
//
//   warm      generous deadlines, no faults: the model rung and the cache
//   overload  tight deadlines, more clients than workers, a small queue:
//             admission control sheds load and the ladder degrades
//   chaos     injected faults at the serve.* sites plus live snapshot
//             swaps: every rung and the explicit-degradation path
//
// Each phase reports p50/p99 client latency (exact, from per-request
// samples), throughput, reject rate and the rung distribution, and checks
// the zero-silent-drops invariant: submitted == completed + rejected +
// cancelled. A violation exits non-zero, which is what tools/check.sh's
// `serve` smoke mode relies on.
//
// Usage: bench_serve [--smoke] [--clients=N] [--requests=N] [--quantized]
//                    [--metrics-json=PATH]
//
// --quantized publishes the ranker in int8 SIMD inference mode (the float
// model stays loaded as the conversion source), exercising the quantized
// scoring path under concurrency and snapshot swaps.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "datasets/imdb.h"
#include "eval/evaluator.h"
#include "ml/encoder.h"
#include "query/generator.h"
#include "serving/service.h"

namespace lshap {
namespace {

using Clock = std::chrono::steady_clock;

struct Options {
  size_t clients = 6;
  size_t requests_per_client = 300;
  size_t workers = 2;
  uint64_t seed = 42;
  bool quantized = false;
};

// One (query, tuple) the clients can ask about — drawn Zipf-style so a few
// hot keys dominate, which is what gives the cache rung real hit rates.
struct RequestKey {
  Query query;
  OutputTuple tuple;
};

std::shared_ptr<const LearnShapleyRanker> MakeBenchRanker(uint64_t seed,
                                                          bool quantized) {
  // Untrained weights: serving latency depends on the forward-pass shape,
  // not on what the weights encode, and skipping training keeps the smoke
  // mode in seconds.
  auto vocab = std::make_shared<Vocab>();
  EncoderConfig cfg;
  cfg.vocab_size = vocab->size();
  cfg.max_len = 64;
  cfg.dim = 16;
  cfg.num_heads = 2;
  cfg.num_layers = 1;
  cfg.ffn_dim = 32;
  LearnShapleyModel model(cfg, seed);
  auto ranker = std::make_shared<LearnShapleyRanker>(
      std::move(model), vocab, cfg.max_len, /*shapley_scale=*/1000.0f,
      "bench");
  if (quantized) {
    ranker->Configure(RankerConfig{}.WithMode(InferenceMode::kQuantized));
  }
  return ranker;
}

// Zipf(s=1.0) sampler over [0, n) via the precomputed CDF.
class ZipfSampler {
 public:
  explicit ZipfSampler(size_t n) {
    cdf_.reserve(n);
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) {
      total += 1.0 / static_cast<double>(i + 1);
      cdf_.push_back(total);
    }
    for (double& c : cdf_) c /= total;
  }
  size_t Sample(Rng& rng) const {
    const double u = rng.NextDouble();
    auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return it == cdf_.end() ? cdf_.size() - 1
                            : static_cast<size_t>(it - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
};

std::vector<RequestKey> BuildRequestPool(const Database& db,
                                         const SchemaGraph& graph,
                                         uint64_t seed) {
  QueryGenConfig qg;
  qg.max_tables = 3;
  qg.union_prob = 0.1;
  QueryGenerator gen(&db, graph, qg, seed);
  std::vector<RequestKey> pool;
  for (int i = 0; pool.size() < 16 && i < 200; ++i) {
    Query q = gen.Generate("serve_q" + std::to_string(i));
    auto result = Evaluate(db, q, ProvenanceCapture::kLineageOnly);
    if (!result.ok() || result->tuples.empty()) continue;
    // Keep lineages bounded so a single request cannot dominate a phase.
    const size_t idx = 0;
    if (result->lineages[idx].empty() || result->lineages[idx].size() > 64) {
      continue;
    }
    pool.push_back(RequestKey{q, result->tuples[idx]});
  }
  return pool;
}

struct PhaseCounters {
  uint64_t submitted = 0, admitted = 0, completed = 0, errors = 0;
  uint64_t cancelled = 0, rejected = 0;
  uint64_t rung_model = 0, rung_cached = 0, rung_stratified = 0,
           rung_proxy = 0, rung_degraded = 0;
};

PhaseCounters ReadCounters(const MetricsRegistry& m) {
  PhaseCounters c;
  c.submitted = m.CounterValue("serve.submitted");
  c.admitted = m.CounterValue("serve.admitted");
  c.completed = m.CounterValue("serve.completed");
  c.errors = m.CounterValue("serve.errors");
  c.cancelled = m.CounterValue("serve.cancelled");
  c.rejected = m.CounterValue("serve.rejected.queue_full") +
               m.CounterValue("serve.rejected.backlog") +
               m.CounterValue("serve.rejected.deadline") +
               m.CounterValue("serve.rejected.no_snapshot") +
               m.CounterValue("serve.rejected.fault") +
               m.CounterValue("serve.rejected.shutdown");
  c.rung_model = m.CounterValue("serve.rung.model");
  c.rung_cached = m.CounterValue("serve.rung.cached");
  c.rung_stratified = m.CounterValue("serve.rung.stratified");
  c.rung_proxy = m.CounterValue("serve.rung.cnf_proxy");
  c.rung_degraded = m.CounterValue("serve.rung.degraded");
  return c;
}

PhaseCounters Delta(const PhaseCounters& after, const PhaseCounters& before) {
  PhaseCounters d;
  d.submitted = after.submitted - before.submitted;
  d.admitted = after.admitted - before.admitted;
  d.completed = after.completed - before.completed;
  d.errors = after.errors - before.errors;
  d.cancelled = after.cancelled - before.cancelled;
  d.rejected = after.rejected - before.rejected;
  d.rung_model = after.rung_model - before.rung_model;
  d.rung_cached = after.rung_cached - before.rung_cached;
  d.rung_stratified = after.rung_stratified - before.rung_stratified;
  d.rung_proxy = after.rung_proxy - before.rung_proxy;
  d.rung_degraded = after.rung_degraded - before.rung_degraded;
  return d;
}

double Percentile(std::vector<double>& v, double q) {
  if (v.empty()) return 0.0;
  const size_t k = std::min(
      v.size() - 1, static_cast<size_t>(q * static_cast<double>(v.size())));
  std::nth_element(v.begin(), v.begin() + static_cast<long>(k), v.end());
  return v[k];
}

struct PhaseSpec {
  const char* name;
  ServiceConfig config;       // fault/metrics filled in by RunPhase
  // Per-request deadline schedule (seconds; 0 = none), cycled per request.
  std::vector<double> deadlines;
  bool swap_snapshots = false;
  // Probabilistic fault arming (site -> probability); empty = no faults.
  std::vector<std::pair<const char*, double>> faults;
};

bool RunPhase(const PhaseSpec& spec, const Options& opt,
              const std::shared_ptr<const Database>& db,
              const SchemaGraph& graph,
              const std::shared_ptr<const LearnShapleyRanker>& ranker,
              const std::vector<RequestKey>& pool, MetricsRegistry* metrics) {
  FaultInjector fault(opt.seed);
  for (const auto& [site, prob] : spec.faults) {
    fault.FailWithProbability(site, prob);
  }
  ServiceConfig config = spec.config;
  config.metrics = metrics;
  if (!spec.faults.empty()) config.fault = &fault;

  const PhaseCounters before = ReadCounters(*metrics);
  RankingService service(config);
  if (!service.Publish(db, ranker).ok()) return false;

  ZipfSampler zipf(pool.size());
  std::vector<std::vector<double>> latencies(opt.clients);
  std::atomic<bool> publishing{true};
  const Clock::time_point phase_start = Clock::now();

  std::vector<std::thread> clients;
  clients.reserve(opt.clients);
  for (size_t c = 0; c < opt.clients; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(opt.seed + 1000 * (c + 1));
      latencies[c].reserve(opt.requests_per_client);
      for (size_t i = 0; i < opt.requests_per_client; ++i) {
        const RequestKey& key = pool[zipf.Sample(rng)];
        RankRequest req;
        req.query = key.query;
        req.tuple = key.tuple;
        req.deadline_seconds =
            spec.deadlines.empty()
                ? 0.0
                : spec.deadlines[i % spec.deadlines.size()];
        const Clock::time_point t0 = Clock::now();
        RankResponse resp = service.Rank(req);
        (void)resp;
        latencies[c].push_back(
            std::chrono::duration<double>(Clock::now() - t0).count());
      }
    });
  }

  std::thread publisher;
  if (spec.swap_snapshots) {
    publisher = std::thread([&] {
      // Re-publish the same frozen database under new epochs while clients
      // hammer the service — the TSan-visible swap-under-load pattern.
      int swaps = 0;
      while (publishing.load(std::memory_order_relaxed) && swaps < 64) {
        (void)service.Publish(db, ++swaps % 2 == 0 ? ranker : nullptr);
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    });
  }

  for (std::thread& t : clients) t.join();
  publishing.store(false, std::memory_order_relaxed);
  if (publisher.joinable()) publisher.join();
  const double wall =
      std::chrono::duration<double>(Clock::now() - phase_start).count();
  service.Shutdown();

  std::vector<double> all;
  for (auto& per_client : latencies) {
    all.insert(all.end(), per_client.begin(), per_client.end());
  }
  const PhaseCounters d = Delta(ReadCounters(*metrics), before);
  const double p50 = Percentile(all, 0.50);
  const double p99 = Percentile(all, 0.99);
  const double qps = wall > 0 ? static_cast<double>(d.completed) / wall : 0.0;
  const double reject_rate =
      d.submitted > 0
          ? static_cast<double>(d.rejected) / static_cast<double>(d.submitted)
          : 0.0;

  std::printf("%-9s p50 %8.3f ms   p99 %8.3f ms   %8.1f req/s   "
              "reject %5.1f%%\n",
              spec.name, p50 * 1e3, p99 * 1e3, qps, reject_rate * 100.0);
  std::printf("          rungs: model %llu  cached %llu  stratified %llu  "
              "cnf_proxy %llu  degraded %llu   errors %llu\n",
              static_cast<unsigned long long>(d.rung_model),
              static_cast<unsigned long long>(d.rung_cached),
              static_cast<unsigned long long>(d.rung_stratified),
              static_cast<unsigned long long>(d.rung_proxy),
              static_cast<unsigned long long>(d.rung_degraded),
              static_cast<unsigned long long>(d.errors));

  // Zero silent drops: every submitted request has exactly one terminal
  // outcome (a response — OK or error — a rejection, or a cancellation).
  const uint64_t accounted = d.completed + d.rejected + d.cancelled;
  if (accounted != d.submitted) {
    std::printf("ACCOUNTING VIOLATION in phase %s: submitted=%llu but "
                "completed+rejected+cancelled=%llu\n",
                spec.name, static_cast<unsigned long long>(d.submitted),
                static_cast<unsigned long long>(accounted));
    return false;
  }
  // Every client call returned (closed loop), so the sample count must
  // match what the clients issued.
  if (all.size() != opt.clients * opt.requests_per_client) {
    std::printf("ACCOUNTING VIOLATION in phase %s: %zu samples for %zu "
                "client calls\n",
                spec.name, all.size(),
                opt.clients * opt.requests_per_client);
    return false;
  }
  return true;
}

int Run(const Options& opt, MetricsRegistry* metrics) {
  bench::PrintHeader("Resilient ranking service: closed-loop load phases");

  GeneratedDb data = MakeImdbDatabase({});
  data.db->FreezeStringOrder();
  std::shared_ptr<const Database> db(std::move(data.db));
  auto ranker = MakeBenchRanker(opt.seed, opt.quantized);
  const std::vector<RequestKey> pool =
      BuildRequestPool(*db, data.graph, opt.seed);
  if (pool.size() < 4) {
    std::printf("failed to generate a usable request pool\n");
    return 1;
  }
  std::printf("request pool: %zu (query, tuple) keys, %zu clients x %zu "
              "requests, %zu workers, %s inference\n\n",
              pool.size(), opt.clients, opt.requests_per_client, opt.workers,
              InferenceModeName(ranker->config().mode));

  PhaseSpec warm;
  warm.name = "warm";
  warm.config = ServiceConfig{}.WithWorkers(opt.workers);
  PhaseSpec overload;
  overload.name = "overload";
  // Closed-loop clients bound the queue depth at the client count, so the
  // queue and backlog caps sit below it to make admission control visible:
  // depth 3+ trips the backlog bound, depth 4 the hard cap, and the 2 ms
  // deadlines fall below the 5 ms floor and are shed up front.
  overload.config = ServiceConfig{}
                        .WithWorkers(1)
                        .WithQueueCapacity(4)
                        .WithMaxBacklogSeconds(0.012)
                        .WithEstRequestSeconds(5e-3);
  overload.deadlines = {0.0, 0.01, 0.002, 0.0, 0.002};
  PhaseSpec chaos;
  chaos.name = "chaos";
  chaos.config = ServiceConfig{}.WithWorkers(opt.workers);
  chaos.deadlines = {0.0, 0.02, 0.0};
  chaos.swap_snapshots = true;
  chaos.faults = {{kSiteServeEval, 0.05},
                  {kSiteServeCache, 0.10},
                  {kSiteServeSnapshot, 0.02}};

  bool ok = true;
  for (const PhaseSpec* spec : {&warm, &overload, &chaos}) {
    ok = RunPhase(*spec, opt, db, data.graph, ranker, pool, metrics) && ok;
  }
  std::printf("\naccounting invariant: %s\n", ok ? "HELD" : "VIOLATED");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace lshap

int main(int argc, char** argv) {
  lshap::MetricsRegistry* metrics = lshap::bench::InitBenchMetrics(&argc, argv);
  static lshap::MetricsRegistry local;
  if (metrics == nullptr) metrics = &local;

  lshap::Options opt;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--smoke") == 0) {
      opt.clients = 3;
      opt.requests_per_client = 60;
    } else if (std::strncmp(arg, "--clients=", 10) == 0) {
      opt.clients = static_cast<size_t>(std::atol(arg + 10));
    } else if (std::strncmp(arg, "--requests=", 11) == 0) {
      opt.requests_per_client = static_cast<size_t>(std::atol(arg + 11));
    } else if (std::strncmp(arg, "--workers=", 10) == 0) {
      opt.workers = static_cast<size_t>(std::atol(arg + 10));
    } else if (std::strcmp(arg, "--quantized") == 0) {
      opt.quantized = true;
    } else {
      std::printf("unknown flag: %s\n", arg);
      return 2;
    }
  }
  return lshap::Run(opt, metrics);
}
