// Capture-overhead experiment supporting the paper's Section 1/6 argument:
// capturing full boolean provenance costs more than capturing lineage,
// which costs more than plain evaluation — and LearnShapley only needs the
// lineage at deployment. Reports wall time and stored bytes per mode over
// the full IMDB query log.
#include <cstdio>

#include "bench_common.h"
#include "common/timer.h"
#include "eval/evaluator.h"

using namespace lshap;
using namespace lshap::bench;

namespace {

struct ModeStats {
  double seconds = 0.0;
  size_t stored_entries = 0;  // clause facts (full) or lineage facts
  size_t tuples = 0;
};

ModeStats RunMode(const Corpus& corpus, ProvenanceCapture capture,
                  int repetitions) {
  ModeStats stats;
  WallTimer timer;
  for (int rep = 0; rep < repetitions; ++rep) {
    for (const auto& entry : corpus.entries) {
      auto result = Evaluate(*corpus.db, entry.query, capture);
      if (!result.ok()) continue;
      if (rep == 0) {
        stats.tuples += result->tuples.size();
        for (const auto& prov : result->provenance) {
          for (const auto& clause : prov.clauses()) {
            stats.stored_entries += clause.size();
          }
        }
        for (const auto& lineage : result->lineages) {
          stats.stored_entries += lineage.size();
        }
      }
    }
  }
  stats.seconds = timer.ElapsedSeconds() / repetitions;
  return stats;
}

}  // namespace

int main() {
  ThreadPool pool;
  PrintHeader("Ablation: provenance-capture overhead (IMDB query log)");
  const Workbench wb = MakeImdbWorkbench(pool);

  const int reps = 5;
  const ModeStats none = RunMode(wb.corpus, ProvenanceCapture::kNone, reps);
  const ModeStats lineage =
      RunMode(wb.corpus, ProvenanceCapture::kLineageOnly, reps);
  const ModeStats full = RunMode(wb.corpus, ProvenanceCapture::kFull, reps);

  std::printf("\n%-22s %12s %14s %16s\n", "capture mode", "log time [s]",
              "stored fact-ids", "vs. no-capture");
  std::printf("%-22s %12.3f %14zu %15.2fx\n", "none (answers only)",
              none.seconds, none.stored_entries, 1.0);
  std::printf("%-22s %12.3f %14zu %15.2fx\n", "lineage only",
              lineage.seconds, lineage.stored_entries,
              lineage.seconds / none.seconds);
  std::printf("%-22s %12.3f %14zu %15.2fx\n", "full provenance (DNF)",
              full.seconds, full.stored_entries,
              full.seconds / none.seconds);
  std::printf("\n(%zu output tuples across %zu queries; LearnShapley needs "
              "only the middle row\nat deployment, the exact algorithm the "
              "bottom one.)\n",
              full.tuples, wb.corpus.entries.size());
  return 0;
}
