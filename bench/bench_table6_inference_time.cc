// Table 6: inference time per (query, output tuple) pair — LearnShapley-base
// and -large vs. Nearest Queries with syntax / witness similarity computed
// at inference time (as deployment would), vs. the exact knowledge-
// compilation algorithm. Average and worst-case milliseconds, single thread.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "common/timer.h"
#include "eval/evaluator.h"
#include "learnshapley/serialization.h"
#include "learnshapley/trainer.h"
#include "similarity/similarity.h"

using namespace lshap;
using namespace lshap::bench;

namespace {

struct Timing {
  double avg_ms = 0.0;
  double max_ms = 0.0;
};

Timing Summarize(const std::vector<double>& ms) {
  Timing t;
  for (double m : ms) {
    t.avg_ms += m;
    t.max_ms = std::max(t.max_ms, m);
  }
  if (!ms.empty()) t.avg_ms /= static_cast<double>(ms.size());
  return t;
}

void PrintRow(const char* name, const Timing& t) {
  std::printf("%-34s %12.3f %12.3f\n", name, t.avg_ms, t.max_ms);
}

}  // namespace

int main(int argc, char** argv) {
  InitBenchMetrics(&argc, argv);
  ThreadPool pool;
  PrintHeader("Table 6: inference time per (query, output tuple) pair [ms]");
  const Workbench wb = MakeAcademicWorkbench(pool);
  const Corpus& corpus = wb.corpus;

  TrainConfig base_cfg;
  base_cfg.pretrain_epochs = 2;
  base_cfg.pretrain_pairs_per_epoch = 512;
  base_cfg.finetune_epochs = 3;
  base_cfg.finetune_samples_per_epoch = 2048;
  base_cfg.seed = 600;
  base_cfg.metrics = BenchMetrics();
  TrainResult base = TrainLearnShapley(corpus, wb.sims, base_cfg, pool);
  base.ranker->set_metrics(BenchMetrics());

  TrainConfig large_cfg = base_cfg;
  large_cfg.model_size = TrainConfig::ModelSize::kLarge;
  large_cfg.seed = 601;
  TrainResult large = TrainLearnShapley(corpus, wb.sims, large_cfg, pool);
  large.ranker->set_metrics(BenchMetrics());

  // Deployment artifacts for the Nearest Queries baselines: per-train-query
  // fact means and (for witness) output sets — data DBShap already stores.
  std::unordered_map<size_t, ShapleyValues> fact_means;
  for (size_t t : corpus.train_idx) {
    ShapleyValues sums;
    std::unordered_map<FactId, size_t> counts;
    for (const auto& c : corpus.entries[t].contributions) {
      for (const auto& [f, v] : c.shapley) {
        sums[f] += v;
        ++counts[f];
      }
    }
    for (auto& [f, s] : sums) s /= static_cast<double>(counts[f]);
    fact_means.emplace(t, std::move(sums));
  }

  auto nn_score = [&](const std::vector<std::pair<double, size_t>>& sims_desc,
                      const ShapleyValues& gold) {
    ShapleyValues out;
    const size_t n = std::min<size_t>(3, sims_desc.size());
    for (const auto& [f, v] : gold) {
      double sum = 0.0;
      for (size_t i = 0; i < n; ++i) {
        const auto& means = fact_means.at(sims_desc[i].second);
        auto it = means.find(f);
        if (it != means.end()) sum += it->second;
      }
      out[f] = n > 0 ? sum / static_cast<double>(n) : 0.0;
    }
    return out;
  };

  std::vector<double> t_base, t_large, t_syntax, t_witness, t_exact;

  for (size_t e : corpus.test_idx) {
    const CorpusEntry& entry = corpus.entries[e];
    // Re-evaluate the query once to obtain provenance for the exact method.
    auto eval_result = Evaluate(*corpus.db, entry.query);
    for (size_t c = 0; c < entry.contributions.size(); ++c) {
      const TupleContribution& contrib = entry.contributions[c];
      std::vector<FactId> lineage;
      for (const auto& [f, v] : contrib.shapley) lineage.push_back(f);

      {
        WallTimer timer;
        (void)base.ranker->ScoreLineage(*corpus.db, entry.query,
                                        contrib.tuple, lineage);
        t_base.push_back(timer.ElapsedMillis());
      }
      {
        WallTimer timer;
        (void)large.ranker->ScoreLineage(*corpus.db, entry.query,
                                         contrib.tuple, lineage);
        t_large.push_back(timer.ElapsedMillis());
      }
      {
        // Syntax NN: decompose the test query into operations against every
        // train query at inference time (the paper's preprocessing cost).
        WallTimer timer;
        std::vector<std::pair<double, size_t>> sims_desc;
        for (size_t t : corpus.train_idx) {
          sims_desc.emplace_back(
              SyntaxSimilarity(entry.query, corpus.entries[t].query), t);
        }
        std::sort(sims_desc.rbegin(), sims_desc.rend());
        (void)nn_score(sims_desc, contrib.shapley);
        t_syntax.push_back(timer.ElapsedMillis());
      }
      {
        // Witness NN: set operations on stored output-tuple sets.
        WallTimer timer;
        std::vector<std::pair<double, size_t>> sims_desc;
        for (size_t t : corpus.train_idx) {
          sims_desc.emplace_back(
              WitnessSimilarity(entry.all_outputs,
                                corpus.entries[t].all_outputs),
              t);
        }
        std::sort(sims_desc.rbegin(), sims_desc.rend());
        (void)nn_score(sims_desc, contrib.shapley);
        t_witness.push_back(timer.ElapsedMillis());
      }
      if (eval_result.ok()) {
        auto it = eval_result->index.find(contrib.tuple);
        if (it != eval_result->index.end()) {
          const Dnf& prov = eval_result->ProvenanceOf(it->second);
          WallTimer timer;
          (void)ComputeShapleyExactUnlimited(prov);
          t_exact.push_back(timer.ElapsedMillis());
        }
      }
    }
  }

  std::printf("\n%-34s %12s %12s   (%zu pairs, Academic test split)\n",
              "method", "avg [ms]", "max [ms]", t_base.size());
  PrintRow("NearestQueries-witness", Summarize(t_witness));
  PrintRow("NearestQueries-syntax", Summarize(t_syntax));
  PrintRow("LearnShapley-base", Summarize(t_base));
  PrintRow("LearnShapley-large", Summarize(t_large));
  PrintRow("Exact Shapley (circuit, [15])", Summarize(t_exact));
  std::printf("\n(Exact computation additionally requires capturing full "
              "boolean provenance,\nwhich is excluded from its timing "
              "here; LearnShapley needs only the lineage.)\n");
  return 0;
}
