// Table 6: inference time per (query, output tuple) pair — LearnShapley-base
// and -large vs. Nearest Queries with syntax / witness similarity computed
// at inference time (as deployment would), vs. the exact knowledge-
// compilation algorithm. Average and worst-case milliseconds, single thread.
//
// LearnShapley rows are split into tokenize / encode / score stages so the
// model forward pass is measured honestly (tokenization is shared context
// work, amortized across the tuple's lineage by the batched scoring path),
// and report per-fact amortized score latency. --quantized adds int8 SIMD
// rows next to the float oracle rows.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench_common.h"
#include "common/timer.h"
#include "eval/evaluator.h"
#include "learnshapley/serialization.h"
#include "learnshapley/trainer.h"
#include "ml/simd.h"
#include "similarity/similarity.h"

using namespace lshap;
using namespace lshap::bench;

namespace {

struct Timing {
  double avg_ms = 0.0;
  double max_ms = 0.0;
};

Timing Summarize(const std::vector<double>& ms) {
  Timing t;
  for (double m : ms) {
    t.avg_ms += m;
    t.max_ms = std::max(t.max_ms, m);
  }
  if (!ms.empty()) t.avg_ms /= static_cast<double>(ms.size());
  return t;
}

void PrintRow(const char* name, const Timing& t) {
  std::printf("%-34s %12.3f %12.3f\n", name, t.avg_ms, t.max_ms);
}

// Per-pair stage timings for one LearnShapley configuration.
struct StageTimes {
  std::vector<double> tokenize_ms;  // per pair
  std::vector<double> encode_ms;    // per pair
  std::vector<double> score_ms;     // per pair
  double total_score_ms = 0.0;
  size_t total_facts = 0;

  double PerFactMs() const {
    return total_facts == 0 ? 0.0
                            : total_score_ms / static_cast<double>(total_facts);
  }
};

void PrintStageRow(const char* name, const StageTimes& t) {
  const Timing tok = Summarize(t.tokenize_ms);
  const Timing enc = Summarize(t.encode_ms);
  const Timing sc = Summarize(t.score_ms);
  std::printf("%-28s %9.3f %9.3f %9.3f %9.3f %11.4f\n", name, tok.avg_ms,
              enc.avg_ms, sc.avg_ms, sc.max_ms, t.PerFactMs());
}

// One (query, tuple, lineage) pair through the three stages, timed
// separately. Mirrors LearnShapleyRanker::ScoreLineage's batched structure:
// (query, tuple) context tokenized and encoded once for the whole lineage.
void TimePair(const LearnShapleyRanker& ranker, const Database& db,
              const Query& q, const OutputTuple& tuple,
              const std::vector<FactId>& lineage, StageTimes& out) {
  const Vocab& vocab = ranker.vocab();
  const size_t max_len = ranker.max_len();

  WallTimer t_tok;
  const std::vector<std::string> q_tokens = QueryTokens(q);
  const std::vector<std::string> t_tokens = TupleTokens(tuple);
  std::vector<std::vector<std::string>> fact_tokens;
  fact_tokens.reserve(lineage.size());
  for (FactId f : lineage) {
    fact_tokens.push_back(FactTokensWithContext(db, f, t_tokens));
  }
  out.tokenize_ms.push_back(t_tok.ElapsedMillis());

  WallTimer t_enc;
  const std::vector<int> q_ids = EncodeTokens(vocab, q_tokens);
  const std::vector<int> t_ids = EncodeTokens(vocab, t_tokens);
  std::vector<EncodedPair> inputs;
  inputs.reserve(lineage.size());
  for (const auto& ft : fact_tokens) {
    const std::vector<int> f_ids = EncodeTokens(vocab, ft);
    inputs.push_back(AssembleEncodedSegments({&q_ids, &t_ids, &f_ids}, max_len));
  }
  out.encode_ms.push_back(t_enc.ElapsedMillis());

  static thread_local InferenceArena arena;
  static thread_local QuantScratch scratch;
  const bool quantized = ranker.config().mode == InferenceMode::kQuantized;
  WallTimer t_score;
  double sink = 0.0;
  for (const EncodedPair& input : inputs) {
    sink += quantized
                ? ranker.quantized_model()->PredictShapley(input, scratch)
                : ranker.model().PredictShapley(input, arena);
  }
  const double ms = t_score.ElapsedMillis();
  out.score_ms.push_back(ms);
  out.total_score_ms += ms;
  out.total_facts += lineage.size();
  if (sink == 12345.6789) std::printf("(unlikely)\n");  // keep scores live
}

}  // namespace

int main(int argc, char** argv) {
  InitBenchMetrics(&argc, argv);
  bool quantized = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quantized") == 0) quantized = true;
  }
  ThreadPool pool;
  PrintHeader("Table 6: inference time per (query, output tuple) pair [ms]");
  const Workbench wb = MakeAcademicWorkbench(pool);
  const Corpus& corpus = wb.corpus;

  TrainConfig base_cfg;
  base_cfg.pretrain_epochs = 2;
  base_cfg.pretrain_pairs_per_epoch = 512;
  base_cfg.finetune_epochs = 3;
  base_cfg.finetune_samples_per_epoch = 2048;
  base_cfg.seed = 600;
  base_cfg.metrics = BenchMetrics();
  TrainResult base = TrainLearnShapley(corpus, wb.sims, base_cfg, pool);
  base.ranker->set_metrics(BenchMetrics());

  TrainConfig large_cfg = base_cfg;
  large_cfg.model_size = TrainConfig::ModelSize::kLarge;
  large_cfg.seed = 601;
  TrainResult large = TrainLearnShapley(corpus, wb.sims, large_cfg, pool);
  large.ranker->set_metrics(BenchMetrics());

  // Quantized twins sharing the trained weights (opt-in mode).
  std::unique_ptr<LearnShapleyRanker> base_q, large_q;
  if (quantized) {
    std::printf("quantized mode: simd=%s\n",
                SimdLevelName(ActiveSimdLevel()));
    base_q.reset(static_cast<LearnShapleyRanker*>(
        base.ranker->Clone().release()));
    base_q->Configure(RankerConfig{}.WithMode(InferenceMode::kQuantized));
    large_q.reset(static_cast<LearnShapleyRanker*>(
        large.ranker->Clone().release()));
    large_q->Configure(RankerConfig{}.WithMode(InferenceMode::kQuantized));
  }

  // Deployment artifacts for the Nearest Queries baselines: per-train-query
  // fact means and (for witness) output sets — data DBShap already stores.
  std::unordered_map<size_t, ShapleyValues> fact_means;
  for (size_t t : corpus.train_idx) {
    ShapleyValues sums;
    std::unordered_map<FactId, size_t> counts;
    for (const auto& c : corpus.entries[t].contributions) {
      for (const auto& [f, v] : c.shapley) {
        sums[f] += v;
        ++counts[f];
      }
    }
    for (auto& [f, s] : sums) s /= static_cast<double>(counts[f]);
    fact_means.emplace(t, std::move(sums));
  }

  auto nn_score = [&](const std::vector<std::pair<double, size_t>>& sims_desc,
                      const ShapleyValues& gold) {
    ShapleyValues out;
    const size_t n = std::min<size_t>(3, sims_desc.size());
    for (const auto& [f, v] : gold) {
      double sum = 0.0;
      for (size_t i = 0; i < n; ++i) {
        const auto& means = fact_means.at(sims_desc[i].second);
        auto it = means.find(f);
        if (it != means.end()) sum += it->second;
      }
      out[f] = n > 0 ? sum / static_cast<double>(n) : 0.0;
    }
    return out;
  };

  StageTimes st_base, st_large, st_base_q, st_large_q;
  std::vector<double> t_syntax, t_witness, t_exact;

  for (size_t e : corpus.test_idx) {
    const CorpusEntry& entry = corpus.entries[e];
    // Re-evaluate the query once to obtain provenance for the exact method.
    auto eval_result = Evaluate(*corpus.db, entry.query);
    for (size_t c = 0; c < entry.contributions.size(); ++c) {
      const TupleContribution& contrib = entry.contributions[c];
      std::vector<FactId> lineage;
      for (const auto& [f, v] : contrib.shapley) lineage.push_back(f);

      TimePair(*base.ranker, *corpus.db, entry.query, contrib.tuple, lineage,
               st_base);
      TimePair(*large.ranker, *corpus.db, entry.query, contrib.tuple, lineage,
               st_large);
      if (quantized) {
        TimePair(*base_q, *corpus.db, entry.query, contrib.tuple, lineage,
                 st_base_q);
        TimePair(*large_q, *corpus.db, entry.query, contrib.tuple, lineage,
                 st_large_q);
      }
      {
        // Syntax NN: decompose the test query into operations against every
        // train query at inference time (the paper's preprocessing cost).
        WallTimer timer;
        std::vector<std::pair<double, size_t>> sims_desc;
        for (size_t t : corpus.train_idx) {
          sims_desc.emplace_back(
              SyntaxSimilarity(entry.query, corpus.entries[t].query), t);
        }
        std::sort(sims_desc.rbegin(), sims_desc.rend());
        (void)nn_score(sims_desc, contrib.shapley);
        t_syntax.push_back(timer.ElapsedMillis());
      }
      {
        // Witness NN: set operations on stored output-tuple sets.
        WallTimer timer;
        std::vector<std::pair<double, size_t>> sims_desc;
        for (size_t t : corpus.train_idx) {
          sims_desc.emplace_back(
              WitnessSimilarity(entry.all_outputs,
                                corpus.entries[t].all_outputs),
              t);
        }
        std::sort(sims_desc.rbegin(), sims_desc.rend());
        (void)nn_score(sims_desc, contrib.shapley);
        t_witness.push_back(timer.ElapsedMillis());
      }
      if (eval_result.ok()) {
        auto it = eval_result->index.find(contrib.tuple);
        if (it != eval_result->index.end()) {
          const Dnf& prov = eval_result->ProvenanceOf(it->second);
          WallTimer timer;
          (void)ComputeShapleyExactUnlimited(prov);
          t_exact.push_back(timer.ElapsedMillis());
        }
      }
    }
  }

  std::printf("\n%-28s %9s %9s %9s %9s %11s   (%zu pairs)\n", "LearnShapley",
              "tok avg", "enc avg", "score avg", "score max", "ms/fact",
              st_base.score_ms.size());
  PrintStageRow("  base (float)", st_base);
  PrintStageRow("  large (float)", st_large);
  if (quantized) {
    PrintStageRow("  base (int8 simd)", st_base_q);
    PrintStageRow("  large (int8 simd)", st_large_q);
  }

  std::printf("\n%-34s %12s %12s   (Academic test split)\n", "method",
              "avg [ms]", "max [ms]");
  PrintRow("NearestQueries-witness", Summarize(t_witness));
  PrintRow("NearestQueries-syntax", Summarize(t_syntax));
  PrintRow("Exact Shapley (circuit, [15])", Summarize(t_exact));
  std::printf("\n(Exact computation additionally requires capturing full "
              "boolean provenance,\nwhich is excluded from its timing "
              "here; LearnShapley needs only the lineage.\nScore timings "
              "exclude tokenize/encode, reported separately above.)\n");
  return 0;
}
