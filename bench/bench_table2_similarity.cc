// Table 2: average query similarities (syntax / witness / rank) between the
// train split and each of train, dev, test, and across all query pairs.
#include <cstdio>

#include "bench_common.h"

using namespace lshap;
using namespace lshap::bench;

namespace {

void PrintDb(const Workbench& wb) {
  const Corpus& c = wb.corpus;
  std::vector<size_t> all(c.entries.size());
  for (size_t i = 0; i < all.size(); ++i) all[i] = i;

  struct Row {
    const char* name;
    const std::vector<std::vector<double>>* matrix;
  };
  const Row rows[] = {
      {"Syntax-Based Similarity", &wb.sims.syntax},
      {"Witness-Based Similarity", &wb.sims.witness},
      {"Rank-Based Similarity", &wb.sims.rank},
  };
  std::printf("\n[%s]\n", wb.label.c_str());
  std::printf("%-26s %12s %12s %12s %12s\n", "", "Train-train", "Train-dev",
              "Train-test", "All pairs");
  for (const Row& row : rows) {
    std::printf("%-26s %12.3f %12.3f %12.3f %12.3f\n", row.name,
                MeanGroupSimilarity(*row.matrix, c.train_idx, c.train_idx),
                MeanGroupSimilarity(*row.matrix, c.train_idx, c.dev_idx),
                MeanGroupSimilarity(*row.matrix, c.train_idx, c.test_idx),
                MeanGroupSimilarity(*row.matrix, all, all));
  }
}

}  // namespace

int main() {
  ThreadPool pool;
  PrintHeader("Table 2: average query similarities between splits");
  const Workbench imdb = MakeImdbWorkbench(pool);
  PrintDb(imdb);
  const Workbench academic = MakeAcademicWorkbench(pool);
  PrintDb(academic);
  return 0;
}
