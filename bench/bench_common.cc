#include "bench_common.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace lshap {
namespace bench {

namespace {

MetricsRegistry* g_bench_metrics = nullptr;
std::string g_metrics_path;

void FlushBenchMetrics() {
  if (g_bench_metrics == nullptr) return;
  const std::string json = g_bench_metrics->ToJson();
  std::FILE* f = std::fopen(g_metrics_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench: cannot open %s for writing\n",
                 g_metrics_path.c_str());
    return;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
}

CorpusConfig ImdbCorpusConfig() {
  CorpusConfig cfg;
  cfg.seed = 101;
  cfg.num_base_queries = 34;
  cfg.max_outputs_per_query = 24;
  // Multi-table joins give the paper-like lineage sizes (~18 facts/result
  // on IMDB); single-table scans have trivial single-fact lineages.
  cfg.query_gen.min_tables = 2;
  cfg.query_gen.max_tables = 4;
  cfg.metrics = BenchMetrics();
  return cfg;
}

CorpusConfig AcademicCorpusConfig() {
  CorpusConfig cfg;
  cfg.seed = 202;
  cfg.num_base_queries = 34;
  cfg.max_outputs_per_query = 24;
  cfg.query_gen.min_tables = 2;
  cfg.query_gen.max_tables = 5;
  cfg.metrics = BenchMetrics();
  return cfg;
}

}  // namespace

MetricsRegistry* InitBenchMetrics(int* argc, char** argv) {
  constexpr char kFlag[] = "--metrics-json=";
  constexpr size_t kFlagLen = sizeof(kFlag) - 1;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strncmp(argv[i], kFlag, kFlagLen) == 0) {
      g_metrics_path = argv[i] + kFlagLen;
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  if (!g_metrics_path.empty() && g_bench_metrics == nullptr) {
    g_bench_metrics = &MetricsRegistry::Global();
    std::atexit(FlushBenchMetrics);
  }
  return g_bench_metrics;
}

MetricsRegistry* BenchMetrics() { return g_bench_metrics; }

Workbench MakeImdbWorkbench(ThreadPool& pool) {
  Workbench wb;
  wb.label = "IMDB";
  wb.data = MakeImdbDatabase({});
  wb.corpus = BuildCorpus(*wb.data.db, wb.data.graph, ImdbCorpusConfig(),
                          pool);
  wb.sims = ComputeSimilarityMatrices(wb.corpus, 12, pool);
  return wb;
}

Workbench MakeAcademicWorkbench(ThreadPool& pool) {
  Workbench wb;
  wb.label = "Academic";
  wb.data = MakeAcademicDatabase({});
  wb.corpus = BuildCorpus(*wb.data.db, wb.data.graph, AcademicCorpusConfig(),
                          pool);
  wb.sims = ComputeSimilarityMatrices(wb.corpus, 12, pool);
  return wb;
}

void PrintHeader(const std::string& title) {
  std::printf("\n================================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================================\n");
}

}  // namespace bench
}  // namespace lshap
