#include "bench_common.h"

#include <cstdio>

namespace lshap {
namespace bench {

namespace {

CorpusConfig ImdbCorpusConfig() {
  CorpusConfig cfg;
  cfg.seed = 101;
  cfg.num_base_queries = 34;
  cfg.max_outputs_per_query = 24;
  // Multi-table joins give the paper-like lineage sizes (~18 facts/result
  // on IMDB); single-table scans have trivial single-fact lineages.
  cfg.query_gen.min_tables = 2;
  cfg.query_gen.max_tables = 4;
  return cfg;
}

CorpusConfig AcademicCorpusConfig() {
  CorpusConfig cfg;
  cfg.seed = 202;
  cfg.num_base_queries = 34;
  cfg.max_outputs_per_query = 24;
  cfg.query_gen.min_tables = 2;
  cfg.query_gen.max_tables = 5;
  return cfg;
}

}  // namespace

Workbench MakeImdbWorkbench(ThreadPool& pool) {
  Workbench wb;
  wb.label = "IMDB";
  wb.data = MakeImdbDatabase({});
  wb.corpus = BuildCorpus(*wb.data.db, wb.data.graph, ImdbCorpusConfig(),
                          pool);
  wb.sims = ComputeSimilarityMatrices(wb.corpus, 12, pool);
  return wb;
}

Workbench MakeAcademicWorkbench(ThreadPool& pool) {
  Workbench wb;
  wb.label = "Academic";
  wb.data = MakeAcademicDatabase({});
  wb.corpus = BuildCorpus(*wb.data.db, wb.data.graph, AcademicCorpusConfig(),
                          pool);
  wb.sims = ComputeSimilarityMatrices(wb.corpus, 12, pool);
  return wb;
}

void PrintHeader(const std::string& title) {
  std::printf("\n================================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================================\n");
}

}  // namespace bench
}  // namespace lshap
