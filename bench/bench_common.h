#ifndef LSHAP_BENCH_BENCH_COMMON_H_
#define LSHAP_BENCH_BENCH_COMMON_H_

#include <memory>
#include <string>

#include "common/metrics.h"
#include "corpus/corpus.h"
#include "datasets/academic.h"
#include "datasets/imdb.h"

namespace lshap {
namespace bench {

// One fully prepared experiment environment: database, DBShap-style corpus
// with exact ground truth, and pairwise similarity matrices. All benches use
// these fixed seeds so every table/figure is reproducible run to run.
struct Workbench {
  GeneratedDb data;
  Corpus corpus;
  SimilarityMatrices sims;
  std::string label;  // "IMDB" or "Academic"
};

// The standard experiment scale (see DESIGN.md): large enough for training
// signal, small enough that every bench binary finishes in minutes.
Workbench MakeImdbWorkbench(ThreadPool& pool);
Workbench MakeAcademicWorkbench(ThreadPool& pool);

// Prints a horizontal rule + centered title, paper-style.
void PrintHeader(const std::string& title);

// --metrics-json=PATH support. Call first thing in main: strips the flag
// from (argc, argv) and, when it was present, returns the process-global
// MetricsRegistry and registers an atexit hook that writes its ToJson()
// snapshot to PATH. Returns null (and arranges nothing) when the flag is
// absent — the benchmarks then run with no-op handles, which is the
// baseline side of the BENCH_pr5.json overhead comparison.
MetricsRegistry* InitBenchMetrics(int* argc, char** argv);

// The registry handed out by InitBenchMetrics, or null. Thread this into
// EvalOptions/CorpusConfig/TrainConfig and set_metrics calls; the workbench
// builders do so themselves.
MetricsRegistry* BenchMetrics();

}  // namespace bench
}  // namespace lshap

#endif  // LSHAP_BENCH_BENCH_COMMON_H_
