#ifndef LSHAP_BENCH_BENCH_COMMON_H_
#define LSHAP_BENCH_BENCH_COMMON_H_

#include <memory>
#include <string>

#include "corpus/corpus.h"
#include "datasets/academic.h"
#include "datasets/imdb.h"

namespace lshap {
namespace bench {

// One fully prepared experiment environment: database, DBShap-style corpus
// with exact ground truth, and pairwise similarity matrices. All benches use
// these fixed seeds so every table/figure is reproducible run to run.
struct Workbench {
  GeneratedDb data;
  Corpus corpus;
  SimilarityMatrices sims;
  std::string label;  // "IMDB" or "Academic"
};

// The standard experiment scale (see DESIGN.md): large enough for training
// signal, small enough that every bench binary finishes in minutes.
Workbench MakeImdbWorkbench(ThreadPool& pool);
Workbench MakeAcademicWorkbench(ThreadPool& pool);

// Prints a horizontal rule + centered title, paper-style.
void PrintHeader(const std::string& title);

}  // namespace bench
}  // namespace lshap

#endif  // LSHAP_BENCH_BENCH_COMMON_H_
