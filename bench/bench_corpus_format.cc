// Packed binary corpus format vs the line-oriented text oracle: save/load
// wall time and bytes on disk, sharded build throughput at K = 1/2/8, and
// the streaming consumer's peak resident entries vs corpus size. Feeds the
// BENCH_pr6.json comparison.
#include <sys/stat.h>

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/timer.h"
#include "corpus/format.h"
#include "corpus/io.h"
#include "corpus/stream.h"
#include "learnshapley/evaluate.h"

using namespace lshap;
using namespace lshap::bench;

namespace {

CorpusConfig BaseConfig() {
  CorpusConfig cfg;
  cfg.seed = 101;
  cfg.num_base_queries = 34;
  cfg.max_outputs_per_query = 24;
  cfg.query_gen.min_tables = 2;
  cfg.query_gen.max_tables = 4;
  cfg.metrics = BenchMetrics();
  return cfg;
}

uint64_t FileBytes(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) return 0;
  return static_cast<uint64_t>(st.st_size);
}

void RemoveShardedCorpus(const std::string& path, size_t max_shards) {
  for (size_t s = 0; s < max_shards; ++s) {
    std::remove(ShardFileName(path, s).c_str());
  }
  std::remove(path.c_str());
}

// A scorer with negligible cost, so the streaming-evaluator pass below
// measures IO/decode behavior rather than model inference.
class LineageSizeScorer : public FactScorer {
 public:
  ShapleyValues Score(const Corpus& corpus, size_t entry_idx,
                      size_t contrib_idx) override {
    const auto& c = corpus.entries[entry_idx].contributions[contrib_idx];
    ShapleyValues out;
    for (const auto& [f, v] : c.shapley) {
      out[f] = static_cast<double>((f * 2654435761u) % 1000u);
    }
    return out;
  }
  std::unique_ptr<FactScorer> Clone() const override {
    return std::make_unique<LineageSizeScorer>();
  }
  std::string name() const override { return "lineage-size"; }
};

}  // namespace

int main(int argc, char** argv) {
  InitBenchMetrics(&argc, argv);
  ThreadPool pool;
  PrintHeader("Packed binary corpus shards vs text oracle (seed 101)");

  const GeneratedDb data = MakeImdbDatabase({});
  const Corpus corpus = BuildCorpus(*data.db, data.graph, BaseConfig(), pool);
  size_t contribs = 0;
  for (const auto& e : corpus.entries) contribs += e.contributions.size();
  std::printf("\ncorpus: %zu entries, %zu contributions\n",
              corpus.entries.size(), contribs);

  const std::string text_path = "/tmp/bench_corpus_format.lshap";
  const std::string bin_path = "/tmp/bench_corpus_format.lshapc";
  constexpr int kReps = 5;

  // ---- Save/load wall time + on-disk size, text vs binary. ----
  double text_save = 0, text_load = 0, bin_save = 0, bin_load = 0;
  for (int r = 0; r < kReps; ++r) {
    {
      WallTimer t;
      if (!SaveCorpus(corpus, text_path).ok()) return 1;
      text_save += t.ElapsedSeconds();
    }
    {
      WallTimer t;
      auto loaded = LoadCorpus(data.db.get(), text_path);
      if (!loaded.ok()) return 1;
      text_load += t.ElapsedSeconds();
    }
    {
      WallTimer t;
      if (!SaveCorpusShards(corpus, bin_path, 1).ok()) return 1;
      bin_save += t.ElapsedSeconds();
    }
    {
      WallTimer t;
      auto loaded = LoadCorpusShards(data.db.get(), bin_path);
      if (!loaded.ok()) return 1;
      bin_load += t.ElapsedSeconds();
    }
  }
  text_save /= kReps;
  text_load /= kReps;
  bin_save /= kReps;
  bin_load /= kReps;
  const uint64_t text_bytes = FileBytes(text_path);
  const uint64_t bin_bytes =
      FileBytes(bin_path) + FileBytes(ShardFileName(bin_path, 0));

  std::printf("\n[save/load, mean of %d reps]\n", kReps);
  std::printf("%-22s save %8.2fms | load %8.2fms | %9llu bytes\n", "text",
              text_save * 1e3, text_load * 1e3,
              static_cast<unsigned long long>(text_bytes));
  std::printf("%-22s save %8.2fms | load %8.2fms | %9llu bytes\n",
              "binary (f64)", bin_save * 1e3, bin_load * 1e3,
              static_cast<unsigned long long>(bin_bytes));
  if (!SaveCorpusShards(corpus, bin_path, 1, /*f32_payload=*/true).ok()) {
    return 1;
  }
  const uint64_t bin32_bytes =
      FileBytes(bin_path) + FileBytes(ShardFileName(bin_path, 0));
  std::printf("%-22s %43llu bytes\n", "binary (f32)",
              static_cast<unsigned long long>(bin32_bytes));
  std::printf("binary vs text: save %.2fx, load %.2fx, size %.2fx smaller "
              "(f32: %.2fx)\n",
              text_save / bin_save, text_load / bin_load,
              static_cast<double>(text_bytes) /
                  static_cast<double>(bin_bytes),
              static_cast<double>(text_bytes) /
                  static_cast<double>(bin32_bytes));
  std::remove(text_path.c_str());

  // ---- Sharded build throughput. ----
  std::printf("\n[sharded build, same merged corpus at any K]\n");
  for (size_t k : {1u, 2u, 8u}) {
    CorpusConfig cfg = BaseConfig();
    cfg.num_shards = k;
    WallTimer t;
    const Corpus c = BuildCorpus(*data.db, data.graph, cfg, pool);
    const double secs = t.ElapsedSeconds();
    std::printf("K=%zu: %.3fs (%.1f entries/s), per-shard entries:", k, secs,
                static_cast<double>(c.entries.size()) / secs);
    for (const auto& s : c.stats.per_shard) std::printf(" %zu", s.entries);
    std::printf("\n");
  }

  // ---- Streaming consumer memory: peak resident entries. ----
  std::printf("\n[streaming evaluation, 8 shards]\n");
  RemoveShardedCorpus(bin_path, 8);
  if (!SaveCorpusShards(corpus, bin_path, 8).ok()) return 1;
  auto stream = ShardedCorpusStream::Open(data.db.get(), bin_path);
  if (!stream.ok()) {
    std::fprintf(stderr, "%s\n", stream.status().ToString().c_str());
    return 1;
  }
  std::vector<size_t> all(corpus.entries.size());
  for (size_t i = 0; i < all.size(); ++i) all[i] = i;
  LineageSizeScorer scorer;
  WallTimer t;
  auto summary = EvaluateScorerStream(*stream, all, scorer, {}, pool);
  if (!summary.ok()) return 1;
  std::printf("evaluated %zu points in %.3fs\n", summary->points.size(),
              t.ElapsedSeconds());
  size_t max_shard = 0;
  for (size_t s = 0; s < stream->num_shards(); ++s) {
    max_shard = std::max(max_shard, stream->shard_entries(s));
  }
  std::printf("peak resident %zu entries (largest shard %zu, corpus %zu) — "
              "bounded by ~2 shards, not corpus size\n",
              stream->peak_resident_entries(), max_shard,
              corpus.entries.size());
  RemoveShardedCorpus(bin_path, 8);

  return 0;
}
