// Table 4: pre-training similarity-objective ablation on the Academic
// database — LearnShapley-base pre-trained on every subset of
// {rank, witness, syntax}, then fine-tuned identically.
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "learnshapley/evaluate.h"
#include "learnshapley/trainer.h"

using namespace lshap;
using namespace lshap::bench;

int main() {
  ThreadPool pool;
  PrintHeader("Table 4: pre-training similarity-metric ablation (Academic)");
  const Workbench wb = MakeAcademicWorkbench(pool);

  struct Combo {
    const char* name;
    PretrainObjectives obj;
  };
  const std::vector<Combo> combos = {
      {"rank & witness & syntax (full)", {true, true, true}},
      {"witness & rank (w/o syntax)", {true, true, false}},
      {"syntax & rank (w/o witness)", {true, false, true}},
      {"witness & syntax (w/o rank)", {false, true, true}},
      {"syntax (w/o witness & rank)", {false, false, true}},
      {"witness (w/o syntax & rank)", {false, true, false}},
      {"rank (w/o witness & syntax)", {true, false, false}},
  };

  std::printf("\n%-34s %9s %8s %8s %8s\n", "pre-training objectives",
              "NDCG@10", "p@1", "p@3", "p@5");
  uint64_t seed = 400;
  for (const Combo& combo : combos) {
    TrainConfig cfg;
    cfg.objectives = combo.obj;
    cfg.pretrain_epochs = 3;
    cfg.pretrain_pairs_per_epoch = 512;
    cfg.finetune_epochs = 4;
    cfg.finetune_samples_per_epoch = 2048;
    cfg.seed = seed++;
    TrainResult r = TrainLearnShapley(wb.corpus, wb.sims, cfg, pool);
    const EvalSummary s = EvaluateScorer(wb.corpus, wb.corpus.test_idx,
                                         *r.ranker, {}, pool);
    std::printf("%-34s %9.3f %8.3f %8.3f %8.3f\n", combo.name, s.ndcg10, s.p1,
                s.p3, s.p5);
  }
  return 0;
}
