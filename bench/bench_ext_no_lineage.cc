// Extension experiment (the paper's Limitations / future work): ranking an
// ARBITRARY candidate fact set — lineage facts mixed with random database
// facts — which the paper's positive-only training cannot handle. We train
// LearnShapley-base with and without zero-target negative sampling and
// measure:
//   separation AUC: P(score(lineage fact) > score(random non-lineage fact))
//   NDCG@10 over the mixed candidate set (non-lineage facts have gold 0).
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "learnshapley/trainer.h"
#include "metrics/ranking_metrics.h"

using namespace lshap;
using namespace lshap::bench;

namespace {

struct ExtResult {
  double auc = 0.0;
  double ndcg = 0.0;
};

ExtResult Measure(LearnShapleyRanker& ranker, const Corpus& corpus) {
  Rng rng(4242);
  double auc_sum = 0.0;
  size_t auc_pairs = 0;
  std::vector<double> ndcgs;
  for (size_t e : corpus.test_idx) {
    const CorpusEntry& entry = corpus.entries[e];
    for (const auto& contrib : entry.contributions) {
      // Candidate set: lineage + equally many random non-lineage facts.
      std::vector<FactId> candidates;
      ShapleyValues gold;
      for (const auto& [f, v] : contrib.shapley) {
        candidates.push_back(f);
        gold[f] = v;
      }
      const size_t num_neg = candidates.size();
      for (size_t i = 0; i < num_neg; ++i) {
        const FactId f =
            static_cast<FactId>(rng.NextBounded(corpus.db->num_facts()));
        if (contrib.shapley.count(f) > 0 || gold.count(f) > 0) continue;
        candidates.push_back(f);
        gold[f] = 0.0;
      }
      const ShapleyValues scores = ranker.ScoreLineage(
          *corpus.db, entry.query, contrib.tuple, candidates);
      // AUC over (positive, negative) pairs.
      for (const auto& [fp, vp] : contrib.shapley) {
        for (const auto& [fc, vg] : gold) {
          if (vg != 0.0) continue;
          if (scores.at(fp) > scores.at(fc)) auc_sum += 1.0;
          if (scores.at(fp) == scores.at(fc)) auc_sum += 0.5;
          ++auc_pairs;
        }
      }
      ndcgs.push_back(NdcgAtK(RankByScore(scores), gold, 10));
    }
  }
  ExtResult r;
  r.auc = auc_pairs > 0 ? auc_sum / static_cast<double>(auc_pairs) : 0.0;
  r.ndcg = Mean(ndcgs);
  return r;
}

}  // namespace

int main() {
  ThreadPool pool;
  PrintHeader("Extension: lineage-free candidate ranking via negative "
              "sampling (Academic)");
  const Workbench wb = MakeAcademicWorkbench(pool);

  TrainConfig base_cfg;
  base_cfg.pretrain_epochs = 2;
  base_cfg.pretrain_pairs_per_epoch = 512;
  base_cfg.finetune_epochs = 6;
  base_cfg.finetune_samples_per_epoch = 3072;
  base_cfg.seed = 1100;

  std::printf("\n%-42s %12s %10s\n", "training regime", "sep. AUC",
              "NDCG@10");
  {
    TrainResult r = TrainLearnShapley(wb.corpus, wb.sims, base_cfg, pool);
    const ExtResult m = Measure(*r.ranker, wb.corpus);
    std::printf("%-42s %12.3f %10.3f\n",
                "positives only (paper)", m.auc, m.ndcg);
  }
  {
    TrainConfig cfg = base_cfg;
    cfg.negative_samples_per_contribution = 4;
    cfg.seed = 1101;
    TrainResult r = TrainLearnShapley(wb.corpus, wb.sims, cfg, pool);
    const ExtResult m = Measure(*r.ranker, wb.corpus);
    std::printf("%-42s %12.3f %10.3f\n",
                "+4 negative samples per tuple (extension)", m.auc, m.ndcg);
  }
  std::printf("\n(AUC 0.5 = cannot separate contributing from "
              "non-contributing facts.)\n");
  return 0;
}
