// Figure 11: robustness to query-log size — LearnShapley-base and the
// Nearest Queries baselines trained on nested 10/25/50/75/100% subsets of
// the training log, evaluated on the fixed test split (Academic).
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "learnshapley/evaluate.h"
#include "learnshapley/nearest_queries.h"
#include "learnshapley/trainer.h"

using namespace lshap;
using namespace lshap::bench;

int main() {
  ThreadPool pool;
  PrintHeader("Figure 11: metrics vs. query-log fraction (Academic)");
  const Workbench wb = MakeAcademicWorkbench(pool);
  const Corpus& corpus = wb.corpus;

  // Nested subsets: shuffle once, take prefixes.
  std::vector<size_t> shuffled = corpus.train_idx;
  Rng rng(900);
  rng.Shuffle(shuffled);
  const double fractions[] = {0.10, 0.25, 0.50, 0.75, 1.00};

  std::printf("\n%-10s %-26s %9s %8s %8s %8s %8s\n", "log-size", "method",
              "NDCG@10", "p@1", "p@3", "p@5", "unseen%");
  uint64_t seed = 901;
  for (double frac : fractions) {
    const size_t take = std::max<size_t>(
        1, static_cast<size_t>(frac * static_cast<double>(shuffled.size())));
    std::vector<size_t> subset(shuffled.begin(),
                               shuffled.begin() + static_cast<ptrdiff_t>(take));

    // Fraction of test lineage facts unseen under this subset.
    Corpus reduced = corpus;
    reduced.train_idx = subset;
    const auto seen = TrainSeenFacts(reduced);
    size_t total = 0;
    size_t unseen = 0;
    for (size_t e : corpus.test_idx) {
      for (const auto& c : corpus.entries[e].contributions) {
        for (const auto& [f, v] : c.shapley) {
          ++total;
          if (seen.count(f) == 0) ++unseen;
        }
      }
    }
    const double unseen_pct =
        100.0 * static_cast<double>(unseen) / static_cast<double>(total);

    // LearnShapley-base on the subset.
    {
      TrainConfig cfg;
      cfg.train_subset = subset;
      cfg.pretrain_epochs = 3;
      cfg.pretrain_pairs_per_epoch = 768;
      cfg.finetune_epochs = 8;
      cfg.finetune_samples_per_epoch = 3072;
      cfg.seed = seed++;
      TrainResult r = TrainLearnShapley(corpus, wb.sims, cfg, pool);
      const EvalSummary s = EvaluateScorer(corpus, corpus.test_idx,
                                           *r.ranker, {}, pool);
      std::printf("%-10.0f %-26s %9.3f %8.3f %8.3f %8.3f %7.1f%%\n",
                  frac * 100, "LearnShapley-base", s.ndcg10, s.p1, s.p3, s.p5,
                  unseen_pct);
    }
    // Nearest Queries baselines restricted to the subset.
    for (SimilarityMetric metric :
         {SimilarityMetric::kSyntax, SimilarityMetric::kWitness,
          SimilarityMetric::kRank}) {
      NearestQueriesScorer nn(&corpus, &wb.sims, metric, 3, subset);
      const EvalSummary s = EvaluateScorer(corpus, corpus.test_idx, nn, {},
                                           pool);
      std::printf("%-10.0f %-26s %9.3f %8.3f %8.3f %8.3f %7.1f%%\n",
                  frac * 100, nn.name().c_str(), s.ndcg10, s.p1, s.p3, s.p5,
                  unseen_pct);
    }
  }
  return 0;
}
