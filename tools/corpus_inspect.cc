// Inspects a packed binary corpus (corpus/format.h): manifest summary,
// per-shard footer index, per-rung build stats, and a few decoded sample
// records. Runs without the originating database — records print as raw
// (query id, SQL) text.
//
// Usage:
//   corpus_inspect <manifest-path> [--records N]
//   corpus_inspect --demo [--records N]
//
// --demo builds a small two-shard IMDB corpus in a temp directory and then
// inspects it; the CI smoke step uses this to exercise the whole binary
// pipeline (sharded build -> manifest -> shard open -> record decode) with
// no fixture files.

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "common/strings.h"
#include "common/thread_pool.h"
#include "corpus/corpus.h"
#include "corpus/format.h"
#include "datasets/imdb.h"
#include "relational/tuple.h"

namespace lshap {
namespace {

const char* PayloadName(ShapleyPayload p) {
  return p == ShapleyPayload::kFloat32 ? "f32 (quantized)" : "f64 (lossless)";
}

void PrintRawRecord(const RawRecord& rec, size_t global_idx) {
  std::printf("    record %zu: id=%s\n", global_idx, rec.query_id.c_str());
  std::printf("      sql: %s\n", rec.sql.c_str());
  std::printf("      outputs: %zu, contributions: %zu\n",
              rec.all_outputs.size(), rec.contributions.size());
  for (size_t c = 0; c < rec.contributions.size() && c < 2; ++c) {
    const TupleContribution& contrib = rec.contributions[c];
    // Top facts by Shapley value.
    std::vector<std::pair<FactId, double>> top(contrib.shapley.begin(),
                                               contrib.shapley.end());
    std::sort(top.begin(), top.end(), [](const auto& a, const auto& b) {
      if (a.second != b.second) return a.second > b.second;
      return a.first < b.first;
    });
    std::string facts;
    for (size_t i = 0; i < top.size() && i < 3; ++i) {
      facts += StrFormat("%s#%u=%.4g", i ? ", " : "", top[i].first,
                         top[i].second);
    }
    std::printf("      tuple %s: lineage %zu, top [%s]\n",
                OutputTupleToString(contrib.tuple).c_str(),
                contrib.shapley.size(), facts.c_str());
  }
}

int Inspect(const std::string& path, size_t sample_records) {
  auto manifest = ReadManifest(path);
  if (!manifest.ok()) {
    std::fprintf(stderr, "corpus_inspect: %s\n",
                 manifest.status().ToString().c_str());
    return 1;
  }
  const CorpusManifest& m = *manifest;

  std::printf("manifest %s\n", path.c_str());
  std::printf("  db: %s (%llu facts), fingerprint %016llx\n",
              m.db_name.c_str(), static_cast<unsigned long long>(m.db_facts),
              static_cast<unsigned long long>(m.db_fingerprint));
  std::printf("  payload: %s\n", PayloadName(m.payload));
  std::printf("  shards: %zu, entries: %llu\n", m.num_shards(),
              static_cast<unsigned long long>(m.total_entries()));
  std::printf("  splits: train %zu / dev %zu / test %zu\n",
              m.train_idx.size(), m.dev_idx.size(), m.test_idx.size());
  std::printf("  build: attempted %zu = exact %zu + strat %zu + mc %zu + "
              "cnf %zu + skipped %zu (%.2fs)\n",
              m.stats.attempted(), m.stats.exact, m.stats.stratified,
              m.stats.monte_carlo, m.stats.cnf_proxy, m.stats.skipped,
              m.stats.wall_seconds);
  for (const ShardBuildStats& s : m.stats.per_shard) {
    std::printf("    built shard %zu: %zu entries, rungs %zu/%zu/%zu/%zu/%zu "
                "(%.2fs)\n",
                static_cast<size_t>(s.shard_index), s.entries, s.exact,
                s.stratified, s.monte_carlo, s.cnf_proxy,
                s.skipped, s.wall_seconds);
  }

  uint64_t total_bytes = 0;
  for (size_t s = 0; s < m.num_shards(); ++s) {
    const std::string shard_path = ShardFileName(path, s);
    auto reader = ShardReader::Open(shard_path, m.db_fingerprint);
    if (!reader.ok()) {
      std::fprintf(stderr, "corpus_inspect: shard %zu: %s\n", s,
                   reader.status().ToString().c_str());
      return 1;
    }
    const ShardFooter& f = reader->footer();
    total_bytes += reader->file_bytes();
    const double per_record =
        reader->num_records() > 0
            ? static_cast<double>(reader->file_bytes()) /
                  static_cast<double>(reader->num_records())
            : 0.0;
    std::printf("  shard %zu: %s\n", s, shard_path.c_str());
    std::printf("    records %zu (base %llu), %llu bytes (%.1f B/record), "
                "checksum %016llx\n",
                reader->num_records(),
                static_cast<unsigned long long>(f.base_entry),
                static_cast<unsigned long long>(reader->file_bytes()),
                per_record, static_cast<unsigned long long>(f.checksum));
    std::printf("    rungs: exact %zu, strat %zu, mc %zu, cnf %zu, "
                "skipped %zu\n",
                f.exact, f.stratified, f.monte_carlo, f.cnf_proxy, f.skipped);
    for (size_t i = 0; i < reader->num_records() && i < sample_records; ++i) {
      auto rec = reader->ReadRawRecord(i, static_cast<size_t>(m.db_facts));
      if (!rec.ok()) {
        std::fprintf(stderr, "corpus_inspect: record %zu: %s\n", i,
                     rec.status().ToString().c_str());
        return 1;
      }
      PrintRawRecord(*rec, static_cast<size_t>(f.base_entry) + i);
    }
  }
  std::printf("  total on disk: %llu bytes across %zu shard files\n",
              static_cast<unsigned long long>(total_bytes), m.num_shards());
  return 0;
}

int RunDemo(size_t sample_records) {
  char dir_template[] = "/tmp/lshap_corpus_demo.XXXXXX";
  const char* dir = mkdtemp(dir_template);
  if (dir == nullptr) {
    std::fprintf(stderr, "corpus_inspect: mkdtemp failed\n");
    return 1;
  }
  const std::string path = std::string(dir) + "/demo.lshapc";

  GeneratedDb data = MakeImdbDatabase({});
  ThreadPool pool(2);
  CorpusConfig cfg;
  cfg.seed = 11;
  cfg.num_base_queries = 8;
  cfg.max_outputs_per_query = 4;
  cfg.query_gen.max_tables = 3;
  cfg.num_shards = 2;
  auto stats = BuildCorpusToShards(*data.db, data.graph, cfg, pool, path);
  if (!stats.ok()) {
    std::fprintf(stderr, "corpus_inspect: demo build: %s\n",
                 stats.status().ToString().c_str());
    return 1;
  }
  std::printf("demo corpus built at %s\n\n", path.c_str());
  const int rc = Inspect(path, sample_records);

  // Best-effort cleanup of the demo files.
  for (size_t s = 0; s < 2; ++s) {
    std::remove(ShardFileName(path, s).c_str());
  }
  std::remove(path.c_str());
  rmdir(dir);
  return rc;
}

}  // namespace
}  // namespace lshap

int main(int argc, char** argv) {
  std::string path;
  bool demo = false;
  size_t sample_records = 2;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--demo") {
      demo = true;
    } else if (arg == "--records" && i + 1 < argc) {
      sample_records = static_cast<size_t>(std::atoll(argv[++i]));
    } else if (!arg.empty() && arg[0] != '-') {
      path = arg;
    } else {
      std::fprintf(stderr,
                   "usage: corpus_inspect <manifest-path> [--records N]\n"
                   "       corpus_inspect --demo [--records N]\n");
      return 2;
    }
  }
  if (demo) return lshap::RunDemo(sample_records);
  if (path.empty()) {
    std::fprintf(stderr, "corpus_inspect: no manifest path (or --demo)\n");
    return 2;
  }
  return lshap::Inspect(path, sample_records);
}
