#!/usr/bin/env bash
# Tier-1 check under sanitizers: configure a dedicated ASan+UBSan build tree,
# build everything, and run the full test suite. Any sanitizer report aborts
# the offending test (-fno-sanitize-recover=all), so a green run means clean.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build-sanitize}"

cmake -B "$BUILD_DIR" -S . -DLSHAP_SANITIZE=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
