#!/usr/bin/env bash
# Tier-1 check under sanitizers. LSHAP_SANITIZE selects the mode:
#
#   address (default, alias ON) — ASan+UBSan build tree (build-sanitize),
#       full test suite.
#   thread — TSan build tree (build-tsan), running the concurrency-heavy
#       tests: the morsel-parallel evaluator differential tests
#       (eval_property_test), the null-semantics golden pins — parallel
#       evaluation over validity bitmaps at 1/2/8 threads
#       (null_semantics_test), the budget/cancellation machinery
#       (budget_test), the ThreadPool stress test (common_test), the
#       sharded metrics registry (metrics_test), the corpus shard
#       streaming layer — concurrent ReadShard + cursor prefetch
#       (corpus_stream_test) — the ranking service: concurrent
#       Submit/Rank with snapshot swaps under load (serving_test) — and
#       the shared const ranker scored from many threads in both float
#       and int8 inference modes (quant_test).
#   serve — plain build, then a short closed-loop bench_serve smoke run
#       (warm / overload / chaos phases). Exits non-zero if any phase
#       violates the zero-silent-drops accounting invariant.
#
# Any sanitizer report aborts the offending test
# (-fno-sanitize-recover=all), so a green run means clean.
set -euo pipefail

cd "$(dirname "$0")/.."

MODE="${LSHAP_SANITIZE:-address}"
case "$MODE" in
  ON|address)
    BUILD_DIR="${BUILD_DIR:-build-sanitize}"
    CMAKE_MODE=ON
    TEST_ARGS=()
    ;;
  thread)
    BUILD_DIR="${BUILD_DIR:-build-tsan}"
    CMAKE_MODE=thread
    # ^metrics_test$ is anchored: a bare 'metrics_test' would also match
    # ranking_metrics_test, which is single-threaded and slow under TSan.
    TEST_ARGS=(-R 'eval_property_test|null_semantics_test|budget_test|common_test|^metrics_test$|corpus_stream_test|serving_test|quant_test')
    ;;
  serve)
    BUILD_DIR="${BUILD_DIR:-build}"
    cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
    cmake --build "$BUILD_DIR" -j "$(nproc)" --target bench_serve
    "$BUILD_DIR"/bench/bench_serve --smoke
    "$BUILD_DIR"/bench/bench_serve --smoke --quantized
    exit 0
    ;;
  *)
    echo "unknown LSHAP_SANITIZE mode '$MODE' (want address|ON|thread|serve)" >&2
    exit 2
    ;;
esac

cmake -B "$BUILD_DIR" -S . -DLSHAP_SANITIZE="$CMAKE_MODE" \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)" \
      "${TEST_ARGS[@]}"
