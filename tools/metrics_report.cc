// Pretty-printer for MetricsRegistry::ToJson() snapshots (the files that
// `--metrics-json=PATH` writes; see DESIGN.md §9). Reads one snapshot from
// a file argument or stdin and renders counters/gauges sorted by name,
// histograms with per-bucket bars, and the span forest as an indented tree
// with per-call latencies.
//
// The parser is a ~100-line recursive-descent JSON reader, deliberately
// self-contained: the repo has no external dependencies beyond
// googletest/google-benchmark, and the snapshot grammar is small and
// machine-generated, so a general JSON library would be all dead weight.
// It accepts arbitrary well-formed JSON anyway — hand-edited snapshots and
// future fields parse fine — and fails with a position on malformed input.
#include <algorithm>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace {

// ---------------------------------------------------------------------------
// Minimal JSON value + parser.
// ---------------------------------------------------------------------------

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  // Insertion-ordered: snapshots are emitted sorted, keep them that way.
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* Find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  // Parses the full document; returns false with an error message on any
  // syntax error or trailing garbage.
  bool Parse(JsonValue* out, std::string* error) {
    bool ok = ParseValue(out) && (SkipWs(), pos_ == text_.size());
    if (!ok && error != nullptr) {
      *error = "parse error at byte " + std::to_string(pos_);
    }
    return ok;
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ParseLiteral(const char* lit) {
    const size_t n = std::strlen(lit);
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return false;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return false;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return false;
          }
          // The registry only escapes control bytes, so BMP-to-UTF-8 here
          // covers everything a real snapshot contains.
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return false;
      }
    }
    return false;  // unterminated
  }

  bool ParseValue(JsonValue* out) {
    SkipWs();
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '{') return ParseObject(out);
    if (c == '[') return ParseArray(out);
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return ParseString(&out->str);
    }
    if (c == 't') {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = true;
      return ParseLiteral("true");
    }
    if (c == 'f') {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = false;
      return ParseLiteral("false");
    }
    if (c == 'n') {
      out->kind = JsonValue::Kind::kNull;
      return ParseLiteral("null");
    }
    // Number.
    const char* begin = text_.c_str() + pos_;
    char* end = nullptr;
    const double v = std::strtod(begin, &end);
    if (end == begin) return false;
    out->kind = JsonValue::Kind::kNumber;
    out->number = v;
    pos_ += static_cast<size_t>(end - begin);
    return true;
  }

  bool ParseObject(JsonValue* out) {
    out->kind = JsonValue::Kind::kObject;
    if (!Consume('{')) return false;
    if (Consume('}')) return true;
    for (;;) {
      SkipWs();
      std::string key;
      if (!ParseString(&key)) return false;
      if (!Consume(':')) return false;
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->object.emplace_back(std::move(key), std::move(value));
      if (Consume(',')) continue;
      return Consume('}');
    }
  }

  bool ParseArray(JsonValue* out) {
    out->kind = JsonValue::Kind::kArray;
    if (!Consume('[')) return false;
    if (Consume(']')) return true;
    for (;;) {
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->array.push_back(std::move(value));
      if (Consume(',')) continue;
      return Consume(']');
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Rendering.
// ---------------------------------------------------------------------------

std::string HumanCount(double v) {
  char buf[64];
  if (v >= 1e9) std::snprintf(buf, sizeof(buf), "%.2fG", v / 1e9);
  else if (v >= 1e6) std::snprintf(buf, sizeof(buf), "%.2fM", v / 1e6);
  else if (v >= 1e4) std::snprintf(buf, sizeof(buf), "%.1fk", v / 1e3);
  else std::snprintf(buf, sizeof(buf), "%.0f", v);
  return buf;
}

std::string HumanSeconds(double s) {
  char buf[64];
  if (s >= 1.0) std::snprintf(buf, sizeof(buf), "%.3fs", s);
  else if (s >= 1e-3) std::snprintf(buf, sizeof(buf), "%.3fms", s * 1e3);
  else std::snprintf(buf, sizeof(buf), "%.1fus", s * 1e6);
  return buf;
}

void PrintScalars(const JsonValue& section, const char* title) {
  std::printf("\n%s\n", title);
  if (section.object.empty()) {
    std::printf("  (none)\n");
    return;
  }
  size_t width = 0;
  for (const auto& [name, v] : section.object) {
    width = std::max(width, name.size());
  }
  for (const auto& [name, v] : section.object) {
    std::printf("  %-*s  %.6g\n", static_cast<int>(width), name.c_str(),
                v.number);
  }
}

void PrintHistograms(const JsonValue& section) {
  std::printf("\nhistograms\n");
  if (section.object.empty()) {
    std::printf("  (none)\n");
    return;
  }
  for (const auto& [name, h] : section.object) {
    const JsonValue* bounds = h.Find("upper_bounds");
    const JsonValue* counts = h.Find("counts");
    const JsonValue* count = h.Find("total_count");
    const JsonValue* sum = h.Find("sum");
    if (bounds == nullptr || counts == nullptr || count == nullptr) {
      std::printf("  %s: (malformed histogram entry)\n", name.c_str());
      continue;
    }
    const double total = count->number;
    const double mean = total > 0 && sum != nullptr ? sum->number / total : 0;
    std::printf("  %s  count=%s mean=%.6g\n", name.c_str(),
                HumanCount(total).c_str(), mean);
    double max_bucket = 1;
    for (const JsonValue& c : counts->array) {
      max_bucket = std::max(max_bucket, c.number);
    }
    for (size_t i = 0; i < counts->array.size(); ++i) {
      const double n = counts->array[i].number;
      if (n == 0) continue;  // sparse print: most buckets are empty
      const int bar = static_cast<int>(40.0 * n / max_bucket + 0.5);
      std::string label =
          i < bounds->array.size()
              ? "<= " + std::to_string(bounds->array[i].number)
              : "> last";
      std::printf("    %-16s %8s  %.*s\n", label.c_str(),
                  HumanCount(n).c_str(), bar,
                  "########################################");
    }
  }
}

void PrintSpan(const JsonValue& span, int depth, double parent_seconds) {
  const JsonValue* name = span.Find("name");
  const JsonValue* count = span.Find("count");
  const JsonValue* seconds = span.Find("seconds");
  const JsonValue* children = span.Find("children");
  if (name == nullptr || count == nullptr || seconds == nullptr) return;
  const double secs = seconds->number;
  const double calls = count->number;
  std::printf("  %*s%-*s  calls=%-8s total=%-10s per-call=%-10s", depth * 2,
              "", std::max(1, 28 - depth * 2), name->str.c_str(),
              HumanCount(calls).c_str(), HumanSeconds(secs).c_str(),
              HumanSeconds(calls > 0 ? secs / calls : 0).c_str());
  if (parent_seconds > 0) std::printf("  %5.1f%%", 100.0 * secs / parent_seconds);
  std::printf("\n");
  if (children != nullptr) {
    for (const JsonValue& child : children->array) {
      PrintSpan(child, depth + 1, secs);
    }
  }
}

bool ReadAll(std::FILE* f, std::string* out) {
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out->append(buf, n);
  return std::ferror(f) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 2 || (argc == 2 && std::strcmp(argv[1], "--help") == 0)) {
    std::fprintf(stderr,
                 "usage: metrics_report [snapshot.json]\n"
                 "Pretty-prints a MetricsRegistry ToJson() snapshot "
                 "(reads stdin when no file is given).\n");
    return 2;
  }
  std::string text;
  if (argc == 2) {
    std::FILE* f = std::fopen(argv[1], "r");
    if (f == nullptr) {
      std::fprintf(stderr, "metrics_report: cannot open %s\n", argv[1]);
      return 1;
    }
    const bool ok = ReadAll(f, &text);
    std::fclose(f);
    if (!ok) {
      std::fprintf(stderr, "metrics_report: read error on %s\n", argv[1]);
      return 1;
    }
  } else if (!ReadAll(stdin, &text)) {
    std::fprintf(stderr, "metrics_report: read error on stdin\n");
    return 1;
  }

  JsonValue root;
  std::string error;
  JsonParser parser(text);
  if (!parser.Parse(&root, &error) ||
      root.kind != JsonValue::Kind::kObject) {
    std::fprintf(stderr, "metrics_report: %s\n",
                 error.empty() ? "top-level value is not an object"
                               : error.c_str());
    return 1;
  }

  const JsonValue* counters = root.Find("counters");
  const JsonValue* gauges = root.Find("gauges");
  const JsonValue* histograms = root.Find("histograms");
  const JsonValue* spans = root.Find("spans");
  if (counters != nullptr) PrintScalars(*counters, "counters");
  if (gauges != nullptr) PrintScalars(*gauges, "gauges");
  if (histograms != nullptr) PrintHistograms(*histograms);
  std::printf("\nspans\n");
  if (spans == nullptr || spans->array.empty()) {
    std::printf("  (none)\n");
  } else {
    for (const JsonValue& s : spans->array) PrintSpan(s, 0, 0.0);
  }
  return 0;
}
