#!/usr/bin/env bash
# Documentation lint, run as a cheap CI job (see .github/workflows/ci.yml):
#
#   1. Every intra-repo markdown link in tracked *.md files must resolve to
#      an existing file (anchors are stripped; external http(s)/mailto links
#      are ignored).
#   2. CHANGES.md must gain at least one line in the commit range under
#      review, so every PR leaves a trail for the next session. The range
#      is ${DOCLINT_BASE:-HEAD~1}..HEAD; the check is skipped (with a
#      notice) when the base cannot be resolved (shallow clone, first
#      commit) or when the range is empty.
#
# Exit code 0 = clean, 1 = lint errors.
set -uo pipefail

cd "$(dirname "$0")/.."

errors=0

# --- 1. Intra-repo markdown links resolve -------------------------------

# Tracked markdown only, so stray scratch files don't fail CI.
mapfile -t md_files < <(git ls-files '*.md')

for f in "${md_files[@]}"; do
  # Inline links: [text](target). Reference-style links and autolinks are
  # rare in this repo and out of scope. Targets with a scheme or pure
  # anchors are skipped.
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|mailto:*|'#'*|'') continue ;;
    esac
    path="${target%%#*}"          # strip anchor
    # Only path-like targets (containing '.' or '/') are checked; this
    # keeps math notation like Φ[f:=i](E) from reading as a link.
    if [[ "$path" != *.* && "$path" != */* ]]; then continue; fi
    # Links resolve relative to the file's directory.
    dir=$(dirname "$f")
    if [[ ! -e "$dir/$path" && ! -e "$path" ]]; then
      echo "doclint: $f: broken link -> $target"
      errors=1
    fi
  done < <(grep -o '\[[^]]*\]([^)]*)' "$f" 2>/dev/null |
           sed 's/.*(\([^)]*\))/\1/')
done

# --- 2. CHANGES.md gained a line in the diff ----------------------------

base="${DOCLINT_BASE:-HEAD~1}"
if git rev-parse --verify --quiet "$base" >/dev/null; then
  if [[ -n "$(git diff --name-only "$base"..HEAD)" ]]; then
    added=$(git diff --numstat "$base"..HEAD -- CHANGES.md |
            awk '{print $1}')
    if [[ -z "$added" || "$added" == "0" ]]; then
      echo "doclint: CHANGES.md gained no lines in $base..HEAD —" \
           "append one line describing this change"
      errors=1
    fi
  else
    echo "doclint: empty diff $base..HEAD; skipping CHANGES.md check"
  fi
else
  echo "doclint: cannot resolve base '$base'; skipping CHANGES.md check"
fi

if [[ "$errors" -eq 0 ]]; then
  echo "doclint: ok (${#md_files[@]} markdown files checked)"
fi
exit "$errors"
