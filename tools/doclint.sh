#!/usr/bin/env bash
# Documentation lint, run as a cheap CI job (see .github/workflows/ci.yml):
#
#   1. Every intra-repo markdown link in tracked *.md files must resolve to
#      an existing file (anchors are stripped; external http(s)/mailto links
#      are ignored).
#   2. CHANGES.md must gain at least one line in the commit range under
#      review, so every PR leaves a trail for the next session. The range
#      is ${DOCLINT_BASE:-HEAD~1}..HEAD; the check is skipped (with a
#      notice) when the base cannot be resolved (shallow clone, first
#      commit) or when the range is empty.
#   3. Every `BENCH_pr<N>.json` named in README.md or EXPERIMENTS.md must
#      exist at the repo root — the docs routinely point readers at these
#      files, and a dangling pointer means a PR forgot to commit its
#      numbers.
#   4. Intra-repo `#anchor` fragments (same-file or cross-file into a
#      markdown target) must match a heading in the target file, using
#      GitHub's slugification (lowercase, punctuation stripped, spaces to
#      hyphens).
#
# Exit code 0 = clean, 1 = lint errors.
set -uo pipefail

cd "$(dirname "$0")/.."

errors=0

# --- 1. Intra-repo markdown links resolve -------------------------------

# Tracked markdown only, so stray scratch files don't fail CI.
mapfile -t md_files < <(git ls-files '*.md')

for f in "${md_files[@]}"; do
  # Inline links: [text](target). Reference-style links and autolinks are
  # rare in this repo and out of scope. Targets with a scheme or pure
  # anchors are skipped.
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|mailto:*|'#'*|'') continue ;;
    esac
    path="${target%%#*}"          # strip anchor
    # Only path-like targets (containing '.' or '/') are checked; this
    # keeps math notation like Φ[f:=i](E) from reading as a link.
    if [[ "$path" != *.* && "$path" != */* ]]; then continue; fi
    # Links resolve relative to the file's directory.
    dir=$(dirname "$f")
    if [[ ! -e "$dir/$path" && ! -e "$path" ]]; then
      echo "doclint: $f: broken link -> $target"
      errors=1
    fi
  done < <(grep -o '\[[^]]*\]([^)]*)' "$f" 2>/dev/null |
           sed 's/.*(\([^)]*\))/\1/')
done

# --- 1b. #anchor fragments resolve to headings --------------------------

# GitHub-style heading slugs of a markdown file, one per line: lowercase,
# everything but [a-z0-9 _-] removed, spaces (not collapsed) to hyphens.
# Duplicate-heading "-1" suffixes are out of scope (none in this repo).
slugs_of() {
  grep -E '^#{1,6} ' "$1" 2>/dev/null | sed -E 's/^#{1,6} +//' |
    tr '[:upper:]' '[:lower:]' |
    sed -E 's/[^a-z0-9 _-]//g; s/ /-/g'
}

for f in "${md_files[@]}"; do
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|mailto:*) continue ;;
    esac
    [[ "$target" == *'#'* ]] || continue
    path="${target%%#*}"
    anchor="${target#*#}"
    [[ -n "$anchor" ]] || continue
    if [[ -z "$path" ]]; then
      anchor_file="$f"                 # same-file anchor
    else
      [[ "$path" == *.md ]] || continue
      dir=$(dirname "$f")
      if [[ -e "$dir/$path" ]]; then anchor_file="$dir/$path"
      elif [[ -e "$path" ]]; then anchor_file="$path"
      else continue; fi                # missing file already reported above
    fi
    if ! slugs_of "$anchor_file" | grep -qx "$anchor"; then
      echo "doclint: $f: anchor #$anchor not found in $anchor_file"
      errors=1
    fi
  done < <(grep -o '\[[^]]*\]([^)]*)' "$f" 2>/dev/null |
           sed 's/.*(\([^)]*\))/\1/')
done

# --- 1c. BENCH_pr*.json pointers exist ----------------------------------

for doc in README.md EXPERIMENTS.md; do
  [[ -e "$doc" ]] || continue
  while IFS= read -r bench; do
    if [[ ! -e "$bench" ]]; then
      echo "doclint: $doc: mentions $bench but the file does not exist"
      errors=1
    fi
  done < <(grep -o 'BENCH_pr[0-9]*\.json' "$doc" | sort -u)
done

# --- 2. CHANGES.md gained a line in the diff ----------------------------

base="${DOCLINT_BASE:-HEAD~1}"
if git rev-parse --verify --quiet "$base" >/dev/null; then
  if [[ -n "$(git diff --name-only "$base"..HEAD)" ]]; then
    added=$(git diff --numstat "$base"..HEAD -- CHANGES.md |
            awk '{print $1}')
    if [[ -z "$added" || "$added" == "0" ]]; then
      echo "doclint: CHANGES.md gained no lines in $base..HEAD —" \
           "append one line describing this change"
      errors=1
    fi
  else
    echo "doclint: empty diff $base..HEAD; skipping CHANGES.md check"
  fi
else
  echo "doclint: cannot resolve base '$base'; skipping CHANGES.md check"
fi

if [[ "$errors" -eq 0 ]]; then
  echo "doclint: ok (${#md_files[@]} markdown files checked)"
fi
exit "$errors"
