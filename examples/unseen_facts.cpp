// Ranking facts never seen during training (Section 5.7): train LearnShapley
// on a fraction of the query log so the test lineages contain many new
// facts, then compare the model's partial rankings on seen vs. unseen facts
// against the Nearest Queries baseline, which by construction scores every
// unseen fact 0.
#include <cstdio>

#include "corpus/corpus.h"
#include "datasets/imdb.h"
#include "learnshapley/evaluate.h"
#include "learnshapley/nearest_queries.h"
#include "learnshapley/trainer.h"

using namespace lshap;

int main() {
  ThreadPool pool;
  GeneratedDb data = MakeImdbDatabase({});
  CorpusConfig corpus_cfg;
  corpus_cfg.seed = 71;
  corpus_cfg.num_base_queries = 18;
  corpus_cfg.max_outputs_per_query = 12;
  Corpus corpus = BuildCorpus(*data.db, data.graph, corpus_cfg, pool);
  SimilarityMatrices sims = ComputeSimilarityMatrices(corpus, 10, pool);

  // Train on only half of the train split to inflate the unseen-fact rate.
  std::vector<size_t> half(corpus.train_idx.begin(),
                           corpus.train_idx.begin() +
                               static_cast<ptrdiff_t>(corpus.train_idx.size() / 2));
  TrainConfig cfg;
  cfg.train_subset = half;
  cfg.pretrain_epochs = 2;
  cfg.pretrain_pairs_per_epoch = 256;
  cfg.finetune_epochs = 3;
  cfg.finetune_samples_per_epoch = 1024;
  cfg.seed = 72;
  TrainResult trained = TrainLearnShapley(corpus, sims, cfg, pool);

  // "Seen" is defined w.r.t. the reduced training subset.
  Corpus reduced = corpus;
  reduced.train_idx = half;
  const auto seen = TrainSeenFacts(reduced);

  size_t total_facts = 0;
  size_t unseen_facts = 0;
  for (size_t e : corpus.test_idx) {
    for (const auto& c : corpus.entries[e].contributions) {
      for (const auto& [f, v] : c.shapley) {
        ++total_facts;
        if (seen.count(f) == 0) ++unseen_facts;
      }
    }
  }
  std::printf("Test lineage facts: %zu, unseen during training: %zu (%.1f%%)\n",
              total_facts, unseen_facts,
              100.0 * static_cast<double>(unseen_facts) /
                  static_cast<double>(total_facts));

  NearestQueriesScorer nn(&corpus, &sims, SimilarityMetric::kSyntax, 3, half);
  const EvalSummary model_sum =
      EvaluateScorer(corpus, corpus.test_idx, *trained.ranker, seen, pool);
  const EvalSummary nn_sum =
      EvaluateScorer(corpus, corpus.test_idx, nn, seen, pool);

  auto partial_means = [](const EvalSummary& s) {
    double seen_sum = 0.0, unseen_sum = 0.0;
    size_t seen_n = 0, unseen_n = 0;
    for (const auto& pt : s.points) {
      if (pt.has_seen) {
        seen_sum += pt.seen_ndcg10;
        ++seen_n;
      }
      if (pt.has_unseen) {
        unseen_sum += pt.unseen_ndcg10;
        ++unseen_n;
      }
    }
    return std::pair<double, double>(
        seen_n ? seen_sum / static_cast<double>(seen_n) : 0.0,
        unseen_n ? unseen_sum / static_cast<double>(unseen_n) : 0.0);
  };
  const auto [model_seen, model_unseen] = partial_means(model_sum);
  const auto [nn_seen, nn_unseen] = partial_means(nn_sum);

  std::printf("\n%-28s %-10s %-12s %-12s\n", "method", "NDCG@10",
              "seen-NDCG", "unseen-NDCG");
  std::printf("%-28s %-10.3f %-12.3f %-12.3f\n",
              trained.ranker->name().c_str(), model_sum.ndcg10, model_seen,
              model_unseen);
  std::printf("%-28s %-10.3f %-12.3f %-12.3f\n", nn.name().c_str(),
              nn_sum.ndcg10, nn_seen, nn_unseen);
  std::printf("\nLearnShapley extracts signal for unseen facts from their "
              "tokenized content;\nthe baseline places all unseen facts at "
              "the bottom in arbitrary order.\n");
  return 0;
}
