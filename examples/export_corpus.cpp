// Builds a DBShap-style corpus over the synthetic IMDB database, saves it to
// a text file (the redistributable artifact), reloads it, and verifies the
// round trip — the workflow for sharing ground-truth corpora between runs
// without recomputing Shapley values.
#include <cstdio>

#include "corpus/corpus.h"
#include "corpus/io.h"
#include "datasets/imdb.h"

using namespace lshap;

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "/tmp/dbshap_imdb.lshap";

  ThreadPool pool;
  GeneratedDb data = MakeImdbDatabase({});
  CorpusConfig cfg;
  cfg.seed = 42;
  cfg.num_base_queries = 20;
  cfg.max_outputs_per_query = 16;
  std::printf("Building corpus (evaluating log + exact Shapley values)...\n");
  Corpus corpus = BuildCorpus(*data.db, data.graph, cfg, pool);

  size_t quartets = 0;
  for (const auto& e : corpus.entries) {
    for (const auto& c : e.contributions) quartets += c.shapley.size();
  }
  std::printf("  %zu queries, %zu (q,t,f,shapley) quartets\n",
              corpus.entries.size(), quartets);

  Status s = SaveCorpus(corpus, path);
  if (!s.ok()) {
    std::printf("save failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("Saved to %s\n", path.c_str());

  auto loaded = LoadCorpus(data.db.get(), path);
  if (!loaded.ok()) {
    std::printf("load failed: %s\n", loaded.status().ToString().c_str());
    return 1;
  }
  std::printf("Reloaded: %zu queries (train %zu / dev %zu / test %zu)\n",
              loaded->entries.size(), loaded->train_idx.size(),
              loaded->dev_idx.size(), loaded->test_idx.size());

  // Spot-check one quartet survives the round trip bit-exactly.
  const auto& orig = corpus.entries[0].contributions[0];
  const auto& back = loaded->entries[0].contributions[0];
  std::printf("Round-trip check on first contribution: %s\n",
              orig.shapley == back.shapley ? "OK" : "MISMATCH");
  return 0;
}
