// End-to-end LearnShapley on the synthetic IMDB database: build a query log
// with exact ground truth (the DBShap pipeline), train LearnShapley, then
// rank the contributing facts of a held-out query using only its lineage —
// no provenance — and compare against the gold ranking.
#include <cstdio>

#include "corpus/corpus.h"
#include "datasets/imdb.h"
#include "learnshapley/evaluate.h"
#include "learnshapley/trainer.h"
#include "metrics/ranking_metrics.h"

using namespace lshap;

int main() {
  ThreadPool pool;
  std::printf("Building synthetic IMDB database and DBShap-style corpus...\n");
  GeneratedDb data = MakeImdbDatabase({});

  CorpusConfig corpus_cfg;
  corpus_cfg.seed = 17;
  corpus_cfg.num_base_queries = 18;
  corpus_cfg.max_outputs_per_query = 12;
  Corpus corpus = BuildCorpus(*data.db, data.graph, corpus_cfg, pool);
  std::printf("  %zu queries (train %zu / dev %zu / test %zu)\n",
              corpus.entries.size(), corpus.train_idx.size(),
              corpus.dev_idx.size(), corpus.test_idx.size());

  std::printf("Computing pairwise query similarities...\n");
  SimilarityMatrices sims = ComputeSimilarityMatrices(corpus, 10, pool);

  std::printf("Training LearnShapley (pre-train + fine-tune)...\n");
  TrainConfig train_cfg;
  train_cfg.pretrain_epochs = 2;
  train_cfg.pretrain_pairs_per_epoch = 256;
  train_cfg.finetune_epochs = 3;
  train_cfg.finetune_samples_per_epoch = 1536;
  train_cfg.seed = 33;
  TrainResult trained = TrainLearnShapley(corpus, sims, train_cfg, pool);
  std::printf("  trained in %.1fs, dev NDCG@10 = %.3f\n",
              trained.train_seconds, trained.best_dev_ndcg10);

  // Explain one held-out (query, output tuple) pair.
  const size_t e = corpus.test_idx[0];
  const CorpusEntry& entry = corpus.entries[e];
  const TupleContribution& contrib = entry.contributions[0];
  std::printf("\nHeld-out query:\n  %s\n", entry.query.ToSql().c_str());
  std::printf("Output tuple: %s  (lineage: %zu facts)\n",
              OutputTupleToString(contrib.tuple).c_str(),
              contrib.shapley.size());

  const ShapleyValues predicted = trained.ranker->Score(corpus, e, 0);
  const std::vector<FactId> pred_rank = RankByScore(predicted);
  const std::vector<FactId> gold_rank = RankByScore(contrib.shapley);

  std::printf("\n%-5s %-42s %-10s %s\n", "pred", "fact", "gold-rank",
              "gold-shapley");
  for (size_t i = 0; i < pred_rank.size() && i < 8; ++i) {
    const FactId f = pred_rank[i];
    size_t gold_pos = 0;
    for (size_t g = 0; g < gold_rank.size(); ++g) {
      if (gold_rank[g] == f) gold_pos = g + 1;
    }
    std::printf("%-5zu %-42s %-10zu %.4f\n", i + 1,
                corpus.db->FactToString(f).c_str(), gold_pos,
                contrib.shapley.at(f));
  }
  std::printf("\nNDCG@10 of this explanation: %.3f\n",
              NdcgAtK(pred_rank, contrib.shapley, 10));

  const EvalSummary test =
      EvaluateScorer(corpus, corpus.test_idx, *trained.ranker, {}, pool);
  std::printf("Test-set mean NDCG@10 %.3f  p@1 %.3f  p@3 %.3f  p@5 %.3f\n",
              test.ndcg10, test.p1, test.p3, test.p5);
  return 0;
}
