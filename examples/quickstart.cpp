// Quickstart: build a tiny movie database, run an SPJU query with provenance
// tracking, compute exact Shapley values for an output tuple, and print the
// ranked explanation. This is the paper's running example (Figures 1-2,
// Examples 1.1-2.2) end to end.
#include <cstdio>

#include "eval/evaluator.h"
#include "relational/database.h"
#include "shapley/shapley.h"

using namespace lshap;

int main() {
  // 1. A database of movies, actors, companies and roles.
  Database db("movies_demo");
  (void)db.AddTable(Schema("companies", {{"name", ColumnType::kString},
                                         {"country", ColumnType::kString}}));
  (void)db.AddTable(Schema("actors", {{"name", ColumnType::kString},
                                      {"age", ColumnType::kInt}}));
  (void)db.AddTable(Schema("movies", {{"title", ColumnType::kString},
                                      {"year", ColumnType::kInt},
                                      {"company", ColumnType::kString}}));
  (void)db.AddTable(Schema("roles", {{"movie", ColumnType::kString},
                                     {"actor", ColumnType::kString}}));

  (void)db.Insert("companies", {Value("Universal"), Value("USA")});
  (void)db.Insert("companies", {Value("Warner"), Value("USA")});
  (void)db.Insert("companies", {Value("Gaumont"), Value("France")});
  (void)db.Insert("actors", {Value("Alice"), Value(int64_t{45})});
  (void)db.Insert("actors", {Value("Bob"), Value(int64_t{30})});
  (void)db.Insert("movies",
                  {Value("Superman"), Value(int64_t{2007}), Value("Universal")});
  (void)db.Insert("movies",
                  {Value("Batman"), Value(int64_t{2007}), Value("Universal")});
  (void)db.Insert("movies",
                  {Value("Spiderman"), Value(int64_t{2007}), Value("Warner")});
  (void)db.Insert("roles", {Value("Superman"), Value("Alice")});
  (void)db.Insert("roles", {Value("Batman"), Value("Alice")});
  (void)db.Insert("roles", {Value("Spiderman"), Value("Alice")});
  (void)db.Insert("roles", {Value("Superman"), Value("Bob")});

  // 2. q_inf: actors of 2007 movies produced by American companies.
  SpjBlock block;
  block.tables = {"movies", "actors", "companies", "roles"};
  block.joins = {
      {{"movies", "title"}, {"roles", "movie"}},
      {{"actors", "name"}, {"roles", "actor"}},
      {{"movies", "company"}, {"companies", "name"}},
  };
  block.selections = {
      {{"companies", "country"}, CompareOp::kEq, Value("USA")},
      {{"movies", "year"}, CompareOp::kEq, Value(int64_t{2007})},
  };
  block.projections = {{"actors", "name"}};
  Query q;
  q.id = "q_inf";
  q.blocks = {block};

  std::printf("Query:\n  %s\n\n", q.ToSql().c_str());

  // 3. Evaluate with provenance tracking.
  auto result = Evaluate(db, q);
  if (!result.ok()) {
    std::printf("evaluation failed: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("Results (%zu tuples):\n", result->tuples.size());
  for (const auto& t : result->tuples) {
    std::printf("  %s\n", OutputTupleToString(t).c_str());
  }

  // 4. Exact Shapley explanation of the tuple "Alice".
  const size_t alice = result->index.at({Value("Alice")});
  const Dnf& prov = result->ProvenanceOf(alice);
  std::printf("\nProvenance of (Alice): %s\n", prov.ToString().c_str());

  const ShapleyValues values = ComputeShapleyExactUnlimited(prov);
  std::printf("\nFacts ranked by Shapley contribution to (Alice):\n");
  int rank = 1;
  for (FactId f : RankByScore(values)) {
    std::printf("  %2d. %-36s %.6f\n", rank++, db.FactToString(f).c_str(),
                values.at(f));
  }
  return 0;
}
