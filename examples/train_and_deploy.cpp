// Offline/online split: train LearnShapley once, persist the model, then in
// a fresh "deployment" step load it from disk and rank the facts of a new
// query using only its lineage — the paper's intended production workflow.
#include <cstdio>

#include "corpus/corpus.h"
#include "datasets/academic.h"
#include "learnshapley/model_io.h"
#include "learnshapley/trainer.h"
#include "metrics/ranking_metrics.h"

using namespace lshap;

int main(int argc, char** argv) {
  const std::string model_path =
      argc > 1 ? argv[1] : "/tmp/learnshapley_academic.lshapm";

  ThreadPool pool;
  GeneratedDb data = MakeAcademicDatabase({});

  // ---- Offline: build corpus, train, save. ----
  CorpusConfig corpus_cfg;
  corpus_cfg.seed = 77;
  corpus_cfg.num_base_queries = 16;
  corpus_cfg.max_outputs_per_query = 12;
  corpus_cfg.query_gen.min_tables = 2;
  Corpus corpus = BuildCorpus(*data.db, data.graph, corpus_cfg, pool);
  SimilarityMatrices sims = ComputeSimilarityMatrices(corpus, 10, pool);

  TrainConfig train_cfg;
  train_cfg.pretrain_epochs = 2;
  train_cfg.pretrain_pairs_per_epoch = 256;
  train_cfg.finetune_epochs = 4;
  train_cfg.finetune_samples_per_epoch = 2048;
  train_cfg.shapley_scale = 10.0f;
  train_cfg.seed = 78;
  std::printf("Training...\n");
  TrainResult trained = TrainLearnShapley(corpus, sims, train_cfg, pool);
  std::printf("  done in %.1fs (dev NDCG@10 %.3f)\n", trained.train_seconds,
              trained.best_dev_ndcg10);

  Status s = SaveRanker(*trained.ranker, model_path);
  if (!s.ok()) {
    std::printf("save failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("Model saved to %s\n\n", model_path.c_str());

  // ---- Online: load and explain a held-out query. ----
  auto ranker = LoadRanker(model_path);
  if (!ranker.ok()) {
    std::printf("load failed: %s\n", ranker.status().ToString().c_str());
    return 1;
  }
  std::printf("Model '%s' loaded.\n", (*ranker)->name().c_str());

  const size_t e = corpus.test_idx[0];
  const CorpusEntry& entry = corpus.entries[e];
  const TupleContribution& contrib = entry.contributions[0];
  std::vector<FactId> lineage;
  for (const auto& [f, v] : contrib.shapley) lineage.push_back(f);

  const ShapleyValues scores = (*ranker)->ScoreLineage(
      *data.db, entry.query, contrib.tuple, lineage);
  const auto ranking = RankByScore(scores);
  std::printf("\nQuery: %s\nTuple: %s\n", entry.query.ToSql().c_str(),
              OutputTupleToString(contrib.tuple).c_str());
  std::printf("Top facts by predicted contribution:\n");
  for (size_t i = 0; i < ranking.size() && i < 5; ++i) {
    std::printf("  %zu. %s\n", i + 1,
                data.db->FactToString(ranking[i]).c_str());
  }
  std::printf("NDCG@10 vs exact Shapley: %.3f\n",
              NdcgAtK(ranking, contrib.shapley, 10));
  return 0;
}
