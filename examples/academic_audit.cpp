// Contribution auditing on the Academic database: for a fixed analyst query
// ("domains of conferences with highly cited recent publications"), rank
// which database facts drive each answer, comparing the exact engine, the
// CNF proxy and a Monte-Carlo estimate — the three engines a practitioner
// can choose between before reaching for the learned model.
#include <cstdio>

#include "common/rng.h"
#include "datasets/academic.h"
#include "eval/evaluator.h"
#include "metrics/ranking_metrics.h"
#include "shapley/shapley.h"

using namespace lshap;

int main() {
  GeneratedDb data = MakeAcademicDatabase({});
  const Database& db = *data.db;

  // Domains of conferences that published post-2015 papers with >150
  // citations (echoes Figure 8(a) of the paper).
  SpjBlock block;
  block.tables = {"publication", "conference", "domain_conference", "domain"};
  block.joins = {
      {{"publication", "cid"}, {"conference", "cid"}},
      {{"domain_conference", "cid"}, {"conference", "cid"}},
      {{"domain_conference", "did"}, {"domain", "did"}},
  };
  block.selections = {
      {{"publication", "year"}, CompareOp::kGt, Value(int64_t{2015})},
      {{"publication", "citations"}, CompareOp::kGt, Value(int64_t{150})},
  };
  block.projections = {{"domain", "name"}};
  Query q;
  q.id = "audit";
  q.blocks = {block};

  std::printf("Audit query:\n  %s\n\n", q.ToSql().c_str());
  auto result = Evaluate(db, q);
  if (!result.ok()) {
    std::printf("evaluation failed: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("%zu answer domains.\n\n", result->tuples.size());

  Rng rng(2024);
  const size_t show = std::min<size_t>(3, result->tuples.size());
  for (size_t i = 0; i < show; ++i) {
    const Dnf& prov = result->ProvenanceOf(i);
    const ShapleyValues exact = ComputeShapleyExactUnlimited(prov);
    const ShapleyValues proxy = ComputeCnfProxyUnlimited(prov);
    const ShapleyValues mc = ComputeShapleyMonteCarloUnlimited(prov, 4000, rng);

    std::printf("Answer %s  (lineage %zu facts)\n",
                OutputTupleToString(result->tuples[i]).c_str(), exact.size());
    const auto gold_rank = RankByScore(exact);
    std::printf("  top contributing facts (exact):\n");
    for (size_t r = 0; r < gold_rank.size() && r < 5; ++r) {
      std::printf("    %zu. %-60s %.4f\n", r + 1,
                  db.FactToString(gold_rank[r]).c_str(),
                  exact.at(gold_rank[r]));
    }
    std::printf("  agreement with exact ranking:  cnf-proxy NDCG@10 %.3f | "
                "monte-carlo NDCG@10 %.3f\n\n",
                NdcgAtK(RankByScore(proxy), exact, 10),
                NdcgAtK(RankByScore(mc), exact, 10));
  }
  return 0;
}
