// Interactive-style CLI: pass any SPJU SQL query over the synthetic IMDB
// database on the command line; the engine parses it, evaluates it with
// provenance, and prints the exact Shapley explanation of each answer.
//
//   ./explain_sql "SELECT DISTINCT actors.name FROM actors, roles
//                  WHERE actors.name = roles.actor AND actors.age > 50"
#include <cstdio>

#include "datasets/imdb.h"
#include "eval/evaluator.h"
#include "query/parser.h"
#include "shapley/shapley.h"

using namespace lshap;

int main(int argc, char** argv) {
  GeneratedDb data = MakeImdbDatabase({});
  const Database& db = *data.db;

  std::string sql;
  if (argc > 1) {
    sql = argv[1];
  } else {
    sql =
        "SELECT DISTINCT companies.name FROM companies, movies, roles "
        "WHERE movies.company = companies.name AND "
        "movies.title = roles.movie AND movies.year > 2015";
    std::printf("(no query given; using a demo query)\n");
  }
  std::printf("Schema: companies(name, country), actors(name, age),\n"
              "        movies(title, year, company), roles(movie, actor)\n\n");

  auto query = ParseQuery(db, sql, "cli");
  if (!query.ok()) {
    std::printf("parse error: %s\n", query.status().ToString().c_str());
    return 1;
  }
  std::printf("Parsed: %s\n\n", query->ToSql().c_str());

  auto result = Evaluate(db, *query);
  if (!result.ok()) {
    std::printf("evaluation error: %s\n",
                result.status().ToString().c_str());
    return 1;
  }
  if (result->tuples.empty()) {
    std::printf("(empty result)\n");
    return 0;
  }

  const size_t show = std::min<size_t>(5, result->tuples.size());
  std::printf("%zu answers; explaining the first %zu:\n\n",
              result->tuples.size(), show);
  for (size_t i = 0; i < show; ++i) {
    const Dnf& prov = result->ProvenanceOf(i);
    const ShapleyValues values = ComputeShapleyExactUnlimited(prov);
    std::printf("%s   (%zu derivations, %zu lineage facts)\n",
                OutputTupleToString(result->tuples[i]).c_str(),
                prov.num_clauses(), values.size());
    const auto ranking = RankByScore(values);
    for (size_t r = 0; r < ranking.size() && r < 4; ++r) {
      std::printf("   %zu. %-44s %.4f\n", r + 1,
                  db.FactToString(ranking[r]).c_str(), values.at(ranking[r]));
    }
    std::printf("\n");
  }
  return 0;
}
